"""Section 9 extension: whitelisted vs non-whitelisted resolvers, compared.

The paper's future work asks for a comparative analysis of resolvers the
CDN whitelists for ECS against those it does not.  This lab builds the
cleanest version of that comparison: two *identical* public resolvers in
the same distant city serve the same spread-out client population; the CDN
whitelists exactly one of them.  Measured per resolver:

* mapping quality — mean modeled TCP-connect time from each client to the
  first edge it is given (the ECS benefit);
* cache state and hit rate — the section 7 cost;
* authoritative query volume — the amplification Chen et al. report as 8×.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..auth.cdn import CdnAuthoritative, build_edge_pools
from ..auth.hierarchy import DnsHierarchy
from ..dnslib import Name, RecordType
from ..measure.digclient import StubClient
from ..net.geo import city
from ..net.topology import Topology
from ..net.transport import Network
from ..resolvers import RecursiveResolver
from .report import Comparison, format_comparisons
from .unroutable import EDGE_CITIES

#: Cities the client population is spread over (far from the resolvers).
CLIENT_CITIES = ("Santiago", "Tokyo", "Johannesburg", "Sydney", "Mumbai",
                 "Frankfurt", "Seattle", "Sao Paulo")


@dataclass
class ResolverOutcome:
    """Measurements for one resolver in the comparison."""

    resolver_ip: str
    whitelisted: bool
    mean_connect_ms: float
    cache_hit_rate: float
    peak_cache_entries: int
    cdn_queries: int


@dataclass
class WhitelistComparison:
    """Side-by-side outcome of the whitelisted-vs-not experiment."""

    whitelisted: ResolverOutcome
    plain: ResolverOutcome

    @property
    def latency_improvement(self) -> float:
        """Fraction by which ECS cut the mean connect time."""
        if self.plain.mean_connect_ms == 0:
            return 0.0
        return 1.0 - (self.whitelisted.mean_connect_ms
                      / self.plain.mean_connect_ms)

    @property
    def query_amplification(self) -> float:
        """CDN queries from the whitelisted resolver vs the plain one."""
        return self.whitelisted.cdn_queries / max(1, self.plain.cdn_queries)

    @property
    def cache_amplification(self) -> float:
        return (self.whitelisted.peak_cache_entries
                / max(1, self.plain.peak_cache_entries))

    def report(self) -> str:
        items = [
            Comparison("mean connect, whitelisted (ms)", None,
                       round(self.whitelisted.mean_connect_ms, 1)),
            Comparison("mean connect, non-whitelisted (ms)", None,
                       round(self.plain.mean_connect_ms, 1)),
            Comparison("latency improvement from ECS",
                       "≈50% (Chen et al.)",
                       f"{self.latency_improvement:.0%}"),
            Comparison("CDN query amplification", "≈8x (Chen et al.)",
                       f"{self.query_amplification:.1f}x"),
            Comparison("peak cache amplification", "cf. Fig 1",
                       f"{self.cache_amplification:.1f}x"),
            Comparison("hit rate, whitelisted", None,
                       f"{self.whitelisted.cache_hit_rate:.0%}"),
            Comparison("hit rate, non-whitelisted", None,
                       f"{self.plain.cache_hit_rate:.0%}"),
        ]
        return format_comparisons(
            items, "Section 9 extension — whitelisted vs non-whitelisted")


def run_whitelist_comparison(seed: int = 0,
                             clients_per_city: int = 4,
                             rounds: int = 6,
                             hostnames: int = 5) -> WhitelistComparison:
    """Build the lab and run the comparison experiment."""
    rng = random.Random(seed)
    topology = Topology()
    net = Network(topology)
    infra = topology.create_as("infra", "US")
    hierarchy = DnsHierarchy(net, infra)

    cdn_as = topology.create_as("cdn", "US", v4_prefixlen=12)
    pools = build_edge_pools(topology, cdn_as,
                             [city(n) for n in EDGE_CITIES],
                             addresses_per_pool=2)
    cdn_ip = cdn_as.host_in(city("Ashburn"))
    domain = Name.from_text("wl.example.")

    service_as = topology.create_as("public-resolvers", "US")
    resolver_city = city("Ashburn")
    whitelisted_ip = service_as.host_in(resolver_city)
    plain_ip = service_as.host_in(resolver_city)
    cdn = CdnAuthoritative(cdn_ip, [domain], pools, topology, ttl=20,
                           whitelist={whitelisted_ip})
    net.attach(cdn)
    hierarchy.attach_authoritative(domain, cdn_ip)

    for ip in (whitelisted_ip, plain_ip):
        resolver = RecursiveResolver(ip, topology.clock, hierarchy.root_ips)
        net.attach(resolver)

    clients: List[StubClient] = []
    eyeballs = {}
    for city_name in CLIENT_CITIES:
        as_ = eyeballs.setdefault(
            city_name, topology.create_as(f"eyeball-{city_name}",
                                          city(city_name).country))
        for _ in range(clients_per_city):
            clients.append(StubClient(as_.host_in(city(city_name)), net))

    names = [f"a{i}.wl.example." for i in range(hostnames)]

    def run_for(resolver_ip: str, whitelisted: bool) -> ResolverOutcome:
        cdn_before = cdn.queries_received
        connects: List[float] = []
        order = clients[:]
        for _ in range(rounds):
            rng.shuffle(order)
            for client in order:
                qname = rng.choice(names)
                result = client.query(resolver_ip, qname)
                if result.first_address:
                    connects.append(net.tcp_handshake_ms(
                        client.ip, result.first_address))
            net.clock.advance(rng.uniform(3.0, 8.0))
        resolver = net.endpoint_at(resolver_ip)
        stats = resolver.cache.stats
        return ResolverOutcome(
            resolver_ip, whitelisted,
            mean_connect_ms=sum(connects) / len(connects),
            cache_hit_rate=stats.hit_rate(),
            peak_cache_entries=stats.max_size,
            cdn_queries=cdn.queries_received - cdn_before,
        )

    outcome_wl = run_for(whitelisted_ip, True)
    outcome_plain = run_for(plain_ip, False)
    return WhitelistComparison(outcome_wl, outcome_plain)
