"""Section 8.4 analysis: the CNAME-flattening pitfall (Figure 8).

The case study: ``customer.com`` is hosted at a DNS provider that flattens
the apex CNAME — on an apex query it resolves the CDN-assigned name itself,
on the backend, *without* the client's ECS.  The CDN therefore maps the
apex answer to an edge near the **DNS provider**, and the content provider
papers over the bad mapping with an HTTP redirect to ``www.customer.com``,
whose normal CNAME path carries ECS end to end.

The lab reproduces the full Figure 8 sequence with a real client, public
resolver, provider, and CDN, and times every phase, so the benchmark can
report the redirect-induced penalty (the paper measured a 125 ms handshake
to the mis-mapped edge and ~650 ms of total penalty) and verify that the
careful variant (backend ECS forwarding) removes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..auth.cdn import CdnAuthoritative, build_edge_pools
from ..auth.flattening import FlatteningProvider
from ..auth.hierarchy import DnsHierarchy
from ..core.policies import EcsPolicy
from ..dnslib import Name, RecordType
from ..measure.digclient import StubClient
from ..net.geo import city
from ..net.topology import Topology
from ..net.transport import Network
from ..resolvers import PublicDnsService
from .report import Comparison, format_comparisons
from .unroutable import EDGE_CITIES


@dataclass
class FlatteningLab:
    """Client (Santiago) + public DNS + provider (Frankfurt) + CDN."""

    net: Network
    topology: Topology
    client_ip: str
    frontend_ip: str
    provider: FlatteningProvider
    cdn: CdnAuthoritative
    apex: Name
    www: Name

    @classmethod
    def build(cls, forward_ecs: bool = False, seed: int = 0,
              client_city: str = "Santiago",
              provider_city: str = "Frankfurt") -> "FlatteningLab":
        topology = Topology()
        net = Network(topology)
        infra = topology.create_as("infra", "US")
        hierarchy = DnsHierarchy(net, infra)

        cdn_as = topology.create_as("major-cdn", "US", v4_prefixlen=12)
        pools = build_edge_pools(topology, cdn_as,
                                 [city(n) for n in EDGE_CITIES],
                                 addresses_per_pool=2)
        cdn_ip = cdn_as.host_in(city("Ashburn"))
        cdn_domain = Name.from_text("cdn.example.")
        cdn = CdnAuthoritative(cdn_ip, [cdn_domain], pools, topology,
                               whitelist=None, answers_per_response=1)
        net.attach(cdn)
        hierarchy.attach_authoritative(cdn_domain, cdn_ip)

        provider_as = topology.create_as("dns-provider", "DE")
        provider_ip = provider_as.host_in(city(provider_city))
        apex = Name.from_text("customer.com.")
        provider = FlatteningProvider(
            provider_ip, apex, cdn_ip,
            apex_target=Name.from_text("ex.cdn.example."),
            www_target=Name.from_text("www-ex.cdn.example."),
            forward_ecs=forward_ecs)
        net.attach(provider)
        hierarchy.attach_authoritative(apex, provider_ip)

        service_as = topology.create_as("public-dns", "US")
        service = PublicDnsService(
            net, service_as, hierarchy.root_ips,
            frontend_cities=[city(n) for n in
                             ("Santiago", "Sao Paulo", "Ashburn", "Frankfurt")],
            egress_city=city("Ashburn"), egress_count=2,
            policy=EcsPolicy())

        eyeball = topology.create_as("eyeball-cl", "CL")
        client_ip = eyeball.host_in(city(client_city))
        # The client uses the anycast public DNS: nearest front-end.
        frontend_ip = min(
            service.frontend_ips,
            key=lambda ip: topology.distance_km(client_ip, ip) or 1e9)
        return cls(net, topology, client_ip, frontend_ip, provider, cdn,
                   apex, apex.child("www"))


@dataclass
class FlatteningTimings:
    """Per-phase timings of the Figure 8 sequence (milliseconds)."""

    apex_dns_ms: float
    apex_edge_ip: Optional[str]
    apex_handshake_ms: float
    redirect_fetch_ms: float
    www_dns_ms: float
    www_edge_ip: Optional[str]
    www_handshake_ms: float

    @property
    def apex_total_ms(self) -> float:
        """Elapsed time wasted before the client reaches the right edge:
        apex resolution + connecting to the mis-mapped edge + fetching the
        redirect (steps 1–8 of Figure 8)."""
        return self.apex_dns_ms + self.apex_handshake_ms + self.redirect_fetch_ms

    @property
    def direct_total_ms(self) -> float:
        """What accessing www directly would have cost (steps 9–14 + fetch)."""
        return self.www_dns_ms + self.www_handshake_ms

    @property
    def penalty_ms(self) -> float:
        """The CNAME-flattening penalty: everything before the www phase."""
        return self.apex_total_ms

    def report(self, title: str = "Figure 8 — CNAME flattening") -> str:
        items = [
            Comparison("handshake to mis-mapped edge (ms)", 125,
                       round(self.apex_handshake_ms, 1)),
            Comparison("handshake to correct edge (ms)", 45,
                       round(self.www_handshake_ms, 1)),
            Comparison("total penalty before www phase (ms)", 650,
                       round(self.penalty_ms, 1)),
        ]
        return format_comparisons(items, title)


def run_flattening_case_study(lab: FlatteningLab) -> FlatteningTimings:
    """Execute the Figure 8 access sequence and time each phase."""
    client = StubClient(lab.client_ip, lab.net)

    apex_result = client.query(lab.frontend_ip, lab.apex, RecordType.A)
    apex_edge = apex_result.first_address
    apex_handshake = (lab.net.tcp_handshake_ms(lab.client_ip, apex_edge)
                      if apex_edge else float("nan"))
    # HTTP redirect: request + response over the established connection.
    redirect_fetch = apex_handshake

    www_result = client.query(lab.frontend_ip, lab.www, RecordType.A)
    www_edge = www_result.first_address
    www_handshake = (lab.net.tcp_handshake_ms(lab.client_ip, www_edge)
                     if www_edge else float("nan"))
    return FlatteningTimings(
        apex_dns_ms=apex_result.elapsed_ms,
        apex_edge_ip=apex_edge,
        apex_handshake_ms=apex_handshake,
        redirect_fetch_ms=redirect_fetch,
        www_dns_ms=www_result.elapsed_ms,
        www_edge_ip=www_edge,
        www_handshake_ms=www_handshake,
    )
