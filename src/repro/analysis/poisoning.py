"""ECS-targeted cache poisoning blast radius (Kintis et al., section 2).

The paper's related work notes that ECS lets an attacker who wins a cache
poisoning race *target* specific subnets: a forged response carrying an ECS
scope poisons only the matching scope-keyed entry, invisible to monitors
outside the victim prefix.  Conversely, the 103 scope-ignoring resolvers
of section 6.3 turn even a targeted forgery into a resolver-wide poisoning.

This analysis quantifies the *blast radius*: after one forged response is
accepted (the race itself is out of scope — we model the post-acceptance
state), what fraction of the client population receives the attacker's
answer, and would an off-prefix monitor notice?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.cache import EcsCache, ScopeMode
from ..dnslib import A, EcsOption, Message, Name, RecordType, ResourceRecord
from ..net.clock import SimClock
from .report import Comparison, format_comparisons

ATTACKER_ANSWER = "198.18.66.66"
LEGIT_ANSWER = "203.0.113.10"


@dataclass
class PoisoningOutcome:
    """Blast radius of one accepted forgery."""

    cache_mode: str
    scope_used: int
    victim_clients_poisoned: int
    victim_clients_total: int
    other_clients_poisoned: int
    other_clients_total: int

    @property
    def victim_fraction(self) -> float:
        return (self.victim_clients_poisoned
                / max(1, self.victim_clients_total))

    @property
    def collateral_fraction(self) -> float:
        return (self.other_clients_poisoned
                / max(1, self.other_clients_total))

    @property
    def monitor_visible(self) -> bool:
        """Would a monitoring client outside the victim prefix see it?"""
        return self.other_clients_poisoned > 0


def run_poisoning_experiment(scope_mode: ScopeMode,
                             forged_scope: int = 24,
                             victim_subnet: str = "100.64.10.0",
                             clients_per_subnet: int = 5,
                             other_subnets: Sequence[str] = (
                                 "100.64.11.0", "100.64.200.0",
                                 "100.99.1.0", "203.0.114.0"),
                             ) -> PoisoningOutcome:
    """Insert one forged, ECS-scoped answer and measure who receives it.

    The forged response claims to cover ``victim_subnet`` at
    ``forged_scope`` bits; legitimate traffic from every other subnet then
    resolves the same name, and we count who gets the attacker's address.
    """
    clock = SimClock()
    cache = EcsCache(clock, scope_mode=scope_mode)
    qname = Name.from_text("bank.example.com")

    # The attacker's forged response, accepted into the cache.
    forged_ecs = EcsOption.from_client_address(victim_subnet, forged_scope)
    forged = Message(is_response=True)
    forged.answers.append(ResourceRecord(qname, RecordType.A, 300,
                                         A(ATTACKER_ANSWER)))
    forged.set_ecs(forged_ecs.response_to(forged_scope))
    cache.store(qname, RecordType.A, forged, forged_ecs)

    def resolve_for(client_ip: str) -> str:
        cached = cache.lookup(qname, RecordType.A, client_ip)
        if cached is not None:
            return cached.answers[0].rdata.address  # type: ignore[attr-defined]
        # Cache miss: the resolver fetches the legitimate answer.
        ecs = EcsOption.from_client_address(client_ip, 24)
        legit = Message(is_response=True)
        legit.answers.append(ResourceRecord(qname, RecordType.A, 300,
                                            A(LEGIT_ANSWER)))
        legit.set_ecs(ecs.response_to(forged_scope))
        cache.store(qname, RecordType.A, legit, ecs)
        return LEGIT_ANSWER

    victim_base = victim_subnet.rsplit(".", 1)[0]
    victim_clients = [f"{victim_base}.{h}" for h in
                      range(1, clients_per_subnet + 1)]
    other_clients = [f"{net.rsplit('.', 1)[0]}.{h}"
                     for net in other_subnets
                     for h in range(1, clients_per_subnet + 1)]

    victim_poisoned = sum(resolve_for(ip) == ATTACKER_ANSWER
                          for ip in victim_clients)
    other_poisoned = sum(resolve_for(ip) == ATTACKER_ANSWER
                         for ip in other_clients)
    return PoisoningOutcome(scope_mode.value, forged_scope,
                            victim_poisoned, len(victim_clients),
                            other_poisoned, len(other_clients))


def compare_blast_radius() -> List[PoisoningOutcome]:
    """The headline comparison: compliant vs scope-ignoring caches."""
    return [run_poisoning_experiment(ScopeMode.HONOR),
            run_poisoning_experiment(ScopeMode.IGNORE)]


def poisoning_report(outcomes: Sequence[PoisoningOutcome]) -> str:
    """Render the blast-radius comparison as a report table."""
    items = []
    for o in outcomes:
        items.append(Comparison(
            f"{o.cache_mode}: victim-prefix clients poisoned",
            "targeted" if o.cache_mode == "honor" else "resolver-wide",
            f"{o.victim_fraction:.0%}"))
        items.append(Comparison(
            f"{o.cache_mode}: off-prefix clients poisoned", None,
            f"{o.collateral_fraction:.0%}",
            note="visible to monitors" if o.monitor_visible
            else "invisible to off-prefix monitors"))
    return format_comparisons(
        items, "ECS-targeted cache poisoning blast radius")
