"""Section 8.3 analysis: source prefix length vs mapping quality (Figs 6, 7).

The apparatus: ~800 Atlas-like probes worldwide; for each source prefix
length, the lab machine queries a CDN's authoritative directly with ECS
derived from each probe's address, and the probe TCP-connects to the first
returned edge (median of 3 attempts).  Two CDNs are modeled after the
paper's findings:

* **CDN-1** ignores ECS below /24 (Fig 6's cliff between 24 and 23);
* **CDN-2** ignores ECS below /21, returning a single resolver-mapped
  answer with scope 0 (Fig 7's cliff between 21 and 20).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..auth.cdn import CdnAuthoritative, build_edge_pools
from ..auth.hierarchy import DnsHierarchy
from ..datasets import paper_numbers as paper
from ..dnslib import EcsOption, Name, RecordType
from ..measure.atlas import AtlasPlatform
from ..measure.digclient import StubClient
from ..net.geo import city
from ..net.topology import Topology
from ..net.transport import Network
from .report import cdf_table
from .unroutable import EDGE_CITIES


@dataclass
class MappingQualityLab:
    """Two CDNs with different minimum-prefix thresholds plus probes."""

    net: Network
    topology: Topology
    lab_ip: str
    atlas: AtlasPlatform
    cdn1: CdnAuthoritative
    cdn2: CdnAuthoritative
    cdn1_qname: Name
    cdn2_qname: Name

    @classmethod
    def build(cls, probe_count: int = 200, seed: int = 0) -> "MappingQualityLab":
        topology = Topology()
        net = Network(topology, advance_clock=False)
        infra = topology.create_as("infra", "US")
        hierarchy = DnsHierarchy(net, infra)
        lab_as = topology.create_as("campus", "US")
        lab_ip = lab_as.host_in(city("Cleveland"))
        atlas = AtlasPlatform(net, probe_count=probe_count, seed=seed)

        def deploy(name: str, min_prefix: int, home: str) -> CdnAuthoritative:
            cdn_as = topology.create_as(name, "US", v4_prefixlen=12)
            pools = build_edge_pools(topology, cdn_as,
                                     [city(n) for n in EDGE_CITIES],
                                     addresses_per_pool=2)
            auth_ip = cdn_as.host_in(city(home))
            domain = Name.from_text(f"{name}.example.")
            cdn = CdnAuthoritative(auth_ip, [domain], pools, topology,
                                   whitelist=None,
                                   min_source_prefix_v4=min_prefix,
                                   answers_per_response=1)
            net.attach(cdn)
            hierarchy.attach_authoritative(domain, auth_ip)
            return cdn

        cdn1 = deploy("cdn1", paper.CDN1_MIN_PREFIX, "Ashburn")
        cdn2 = deploy("cdn2", paper.CDN2_MIN_PREFIX, "Toronto")
        return cls(net, topology, lab_ip, atlas, cdn1, cdn2,
                   Name.from_text("www.cdn1.example."),
                   Name.from_text("www.cdn2.example."))


@dataclass
class PrefixLengthSeries:
    """Fig 6/7 data for one CDN: per prefix length, latencies + answers."""

    latencies_ms: Dict[int, List[float]]
    unique_answers: Dict[int, int]
    scopes: Dict[int, List[int]]

    def median(self, prefix_len: int) -> float:
        values = sorted(self.latencies_ms[prefix_len])
        return values[len(values) // 2]

    def report(self, title: str) -> str:
        series = {f"/{L}": sorted(v) for L, v in
                  sorted(self.latencies_ms.items())}
        table = cdf_table(series, title=title)
        uniq = ", ".join(f"/{L}:{n}" for L, n in
                         sorted(self.unique_answers.items()))
        return f"{table}\nunique first answers per prefix length: {uniq}"


def measure_mapping_quality(lab: MappingQualityLab, cdn: CdnAuthoritative,
                            qname: Name,
                            prefix_lengths: Sequence[int] = tuple(range(16, 25)),
                            seed: int = 0) -> PrefixLengthSeries:
    """Run the Fig 6/7 sweep for one CDN."""
    client = StubClient(lab.lab_ip, lab.net)
    rng = random.Random(seed)
    latencies: Dict[int, List[float]] = {L: [] for L in prefix_lengths}
    answers: Dict[int, set] = {L: set() for L in prefix_lengths}
    scopes: Dict[int, List[int]] = {L: [] for L in prefix_lengths}
    for L in prefix_lengths:
        for probe in lab.atlas.probes:
            ecs = EcsOption.from_client_address(probe.ip, L)
            result = client.query(cdn.ip, qname, RecordType.A, ecs=ecs)
            first = result.first_address
            if first is None:
                continue
            answers[L].add(first)
            if result.scope is not None:
                scopes[L].append(result.scope)
            latencies[L].append(probe.tcp_handshake_ms(lab.net, first,
                                                       rng=rng))
    return PrefixLengthSeries(latencies,
                              {L: len(a) for L, a in answers.items()},
                              scopes)


def crossover_prefix_length(series: PrefixLengthSeries,
                            degradation_factor: float = 1.5) -> Optional[int]:
    """The longest prefix length at which mapping quality collapses.

    Scans downward from /24; returns the first length whose median latency
    exceeds ``degradation_factor`` × the /24 median (the Fig 6/7 cliff).
    """
    if 24 not in series.latencies_ms or not series.latencies_ms[24]:
        return None
    baseline = series.median(24)
    for L in sorted(series.latencies_ms, reverse=True):
        if L == 24 or not series.latencies_ms[L]:
            continue
        if series.median(L) > degradation_factor * baseline:
            return L
    return None
