"""Figure-data export: every reproduced figure as a plottable CSV.

The library is plotting-free by design (no third-party dependencies); this
module writes each figure's underlying series in a one-header-row CSV so
any external tool (gnuplot, matplotlib, a spreadsheet) can redraw the
paper's figures from the reproduction's data.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .cache_sim import cdf_points
from .hidden import HiddenResolverAnalysis
from .mapping_quality import PrefixLengthSeries

PathLike = Union[str, Path]


def _write_rows(path: PathLike, header: Sequence[str],
                rows: Sequence[Sequence]) -> int:
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)
    return len(rows)


def export_fig1(series: Dict[int, List[float]], path: PathLike) -> int:
    """Fig 1 CDF: one (ttl, blow-up, cdf) row per resolver sample."""
    rows = []
    for ttl, values in sorted(series.items()):
        for value, fraction in cdf_points(values):
            rows.append((ttl, f"{value:.4f}", f"{fraction:.4f}"))
    return _write_rows(path, ("ttl_s", "blowup", "cdf"), rows)


def export_fig2(series: Sequence[Tuple[float, float]], path: PathLike) -> int:
    """Fig 2: (client fraction, mean blow-up) rows."""
    rows = [(f"{frac:.2f}", f"{blowup:.4f}") for frac, blowup in series]
    return _write_rows(path, ("client_fraction", "blowup"), rows)


def export_fig3(series: Sequence[Tuple[float, float, float]],
                path: PathLike) -> int:
    """Fig 3: (client fraction, hit rate without ECS, with ECS) rows."""
    rows = [(f"{frac:.2f}", f"{no_ecs:.4f}", f"{with_ecs:.4f}")
            for frac, no_ecs, with_ecs in series]
    return _write_rows(path, ("client_fraction", "hit_rate_no_ecs",
                              "hit_rate_ecs"), rows)


def export_fig45(analysis: HiddenResolverAnalysis, path: PathLike,
                 via_megadns: bool) -> int:
    """Fig 4/5 scatter: one (F-H km, F-R km) row per combination."""
    rows = [(f"{c.f_h_km:.1f}", f"{c.f_r_km:.1f}")
            for c in analysis.split(via_megadns)]
    return _write_rows(path, ("forwarder_hidden_km",
                              "forwarder_recursive_km"), rows)


def export_fig67(series: PrefixLengthSeries, path: PathLike) -> int:
    """Fig 6/7 CDFs: (prefix length, latency ms, cdf) rows."""
    rows = []
    for length, values in sorted(series.latencies_ms.items()):
        for value, fraction in cdf_points(sorted(values)):
            rows.append((length, f"{value:.2f}", f"{fraction:.4f}"))
    return _write_rows(path, ("source_prefix_len", "connect_ms", "cdf"),
                       rows)


def export_all(out_dir: PathLike, *, fig1=None, fig2=None, fig3=None,
               hidden: HiddenResolverAnalysis = None,
               fig6: PrefixLengthSeries = None,
               fig7: PrefixLengthSeries = None) -> List[str]:
    """Write every provided figure's data; returns the file names written."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    if fig1 is not None:
        export_fig1(fig1, out / "fig1_blowup_cdf.csv")
        written.append("fig1_blowup_cdf.csv")
    if fig2 is not None:
        export_fig2(fig2, out / "fig2_blowup_vs_clients.csv")
        written.append("fig2_blowup_vs_clients.csv")
    if fig3 is not None:
        export_fig3(fig3, out / "fig3_hit_rate.csv")
        written.append("fig3_hit_rate.csv")
    if hidden is not None:
        export_fig45(hidden, out / "fig4_mp_scatter.csv", True)
        export_fig45(hidden, out / "fig5_nonmp_scatter.csv", False)
        written += ["fig4_mp_scatter.csv", "fig5_nonmp_scatter.csv"]
    if fig6 is not None:
        export_fig67(fig6, out / "fig6_cdn1_cdf.csv")
        written.append("fig6_cdn1_cdf.csv")
    if fig7 is not None:
        export_fig67(fig7, out / "fig7_cdn2_cdf.csv")
        written.append("fig7_cdn2_cdf.csv")
    return written
