"""Trace-driven cache simulations (section 7.1, Figures 1 and 2).

The replay follows the paper's method exactly: resolvers adhere to the
returned TTL, never evict early, and — in the ECS run — key entries by the
authoritative scope, so several copies of one answer coexist when clients
span multiple scope-sized subnets.  The *blow-up factor* for a resolver is
the ratio of the peak cache size with ECS to the peak size without.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from operator import attrgetter
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from ..core.cache import ScopeTracker
from ..datasets.allnames import AllNamesDataset
from ..datasets.public_cdn import PublicCdnDataset
from ..datasets.records import AllNamesRecord, PublicCdnRecord
from ..net.addr import _MASKS_BY_VERSION, parse_addr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (datasets -> net)
    from ..datasets.columnar import ColumnarStore


@dataclass
class ReplayResult:
    """Peak sizes and hit counts of one with/without-ECS replay pair."""

    max_size_ecs: int
    max_size_no_ecs: int
    hit_rate_ecs: float
    hit_rate_no_ecs: float

    @property
    def blowup(self) -> float:
        """Peak-cache ratio; 1.0 when ECS adds no state."""
        if self.max_size_no_ecs == 0:
            return 1.0
        return self.max_size_ecs / self.max_size_no_ecs


@dataclass(frozen=True)
class ReplayPartial:
    """Raw counters of one replay shard, mergeable into a ReplayResult.

    Every field is an integer that sums across shards: hit/miss counters
    add exactly when the trace is partitioned along cache-key boundaries
    (e.g. by qname), and peak sizes add because shard caches are
    disjoint — the merged peak is the sum of per-shard peaks, exact
    whenever shard occupancies peak together (true of the paper's
    steady-state traces).  Field-wise addition makes the merge
    associative, commutative, and possessed of an all-zero identity, so
    shard order never matters.
    """

    hits_ecs: int = 0
    misses_ecs: int = 0
    hits_no_ecs: int = 0
    misses_no_ecs: int = 0
    max_size_ecs: int = 0
    max_size_no_ecs: int = 0

    @property
    def queries(self) -> int:
        """Records replayed in this shard."""
        return self.hits_ecs + self.misses_ecs

    def merge(self, other: "ReplayPartial") -> "ReplayPartial":
        """Combine two shard partials (field-wise sum)."""
        return ReplayPartial(
            self.hits_ecs + other.hits_ecs,
            self.misses_ecs + other.misses_ecs,
            self.hits_no_ecs + other.hits_no_ecs,
            self.misses_no_ecs + other.misses_no_ecs,
            self.max_size_ecs + other.max_size_ecs,
            self.max_size_no_ecs + other.max_size_no_ecs)

    def result(self) -> ReplayResult:
        """Collapse the counters into the rate-based result."""
        total_ecs = self.hits_ecs + self.misses_ecs
        total_plain = self.hits_no_ecs + self.misses_no_ecs
        return ReplayResult(
            self.max_size_ecs, self.max_size_no_ecs,
            self.hits_ecs / total_ecs if total_ecs else 0.0,
            self.hits_no_ecs / total_plain if total_plain else 0.0)


def replay_partial(records: Iterable, client_of, scope_of,
                   ttl_of, fast: bool = True) -> ReplayPartial:
    """Replay one record stream, keeping raw counters for merging.

    The readable reference path: per-record accessor callables, one
    attribute lookup at a time.  ``fast=False`` additionally routes the
    trackers' prefix keying through the ``ipaddress``-based reference —
    results are identical either way (pinned by the equivalence suite);
    the flag exists for benchmarking the before/after.
    """
    ecs = ScopeTracker(use_ecs=True, fast=fast)
    plain = ScopeTracker(use_ecs=False, fast=fast)
    for r in records:
        client = client_of(r)
        scope = scope_of(r)
        ttl = ttl_of(r)
        ecs.access(r.ts, r.qname, r.qtype, client, scope, ttl)
        plain.access(r.ts, r.qname, r.qtype, None, 0, ttl)
    return ReplayPartial(ecs.hits, ecs.misses, plain.hits, plain.misses,
                         ecs.max_size, plain.max_size)


def replay_partial_batched(records: Iterable, client_field: str,
                           scope_field: str = "scope",
                           ttl_field: str = "ttl",
                           ttl_override: Optional[float] = None
                           ) -> ReplayPartial:
    """Batched fast lane of :func:`replay_partial`.

    Field *names* replace accessor callables, so one fused
    :func:`operator.attrgetter` (C-level) pulls every attribute per record
    and no per-record Python lambda frames are created; the tracker access
    methods are hoisted to locals outside the loop.  ``ttl_override``
    replaces the per-record TTL with a constant (``0`` is honored — see
    :func:`public_cdn_blowups`).  Produces counters identical to the
    reference path for the same records.
    """
    ecs = ScopeTracker(use_ecs=True)
    plain = ScopeTracker(use_ecs=False)
    get = attrgetter("ts", "qname", "qtype", client_field, scope_field,
                     ttl_field)
    ecs_access = ecs.access
    plain_access = plain.access
    if ttl_override is None:
        for r in records:
            ts, qname, qtype, client, scope, ttl = get(r)
            ecs_access(ts, qname, qtype, client, scope, ttl)
            plain_access(ts, qname, qtype, None, 0, ttl)
    else:
        ttl = ttl_override
        for r in records:
            ts, qname, qtype, client, scope, _ = get(r)
            ecs_access(ts, qname, qtype, client, scope, ttl)
            plain_access(ts, qname, qtype, None, 0, ttl)
    return ReplayPartial(ecs.hits, ecs.misses, plain.hits, plain.misses,
                         ecs.max_size, plain.max_size)


def replay_partial_columns(store: "ColumnarStore", client_field: str,
                           rows: Optional[Iterable[int]] = None,
                           scope_field: str = "scope",
                           ttl_field: str = "ttl",
                           ttl_override: Optional[float] = None
                           ) -> ReplayPartial:
    """Columnar fast lane: replay packed columns, no record objects.

    Counter-identical to :func:`replay_partial_batched` over
    ``store.to_records()`` by construction — the equivalence suite pins
    it — because it inlines :meth:`ScopeTracker.access` exactly:
    purge-then-lookup, a hit iff the stored expiry exceeds ``now``, and
    the peak updated only after an insert.  Two structural swaps buy the
    speed without touching semantics:

    * cache keys use *dictionary codes* instead of strings.  Dictionary
      encoding is a bijection within one store, so ``(qcode, qtype, …)``
      keys collide exactly when the string keys would, and every counter
      is unchanged.  Client addresses parse once per dictionary entry
      (one :func:`repro.net.addr.parse_addr` per unique client, not per
      row), and prefix truncation is one table-mask AND per miss.
    * the row loop walks typed memoryviews (or ``rows``, an iterable of
      row indices — e.g. one qname bucket of
      :meth:`~repro.datasets.columnar.ColumnarStore.row_buckets`), so
      per-row cost is integer indexing instead of attribute access on
      materialized objects.
    """
    ts_col = store.column("ts")
    qname_col = store.column("qname")
    qtype_col = store.column("qtype")
    client_col = store.column(client_field)
    scope_col = store.column(scope_field)
    ttl_col = store.column(ttl_field)
    #: code -> (version, value, mask table), hoisted out of the row loop.
    parsed = []
    for address in store.dictionary(client_field):
        version, value = parse_addr(address)
        parsed.append((version, value, _MASKS_BY_VERSION[version]))

    ecs_expiry: Dict[tuple, float] = {}
    plain_expiry: Dict[tuple, float] = {}
    ecs_heap: List[Tuple[float, tuple]] = []
    plain_heap: List[Tuple[float, tuple]] = []
    heappush, heappop = heapq.heappush, heapq.heappop
    hits_ecs = misses_ecs = hits_no_ecs = misses_no_ecs = 0
    max_ecs = max_plain = 0

    if rows is None:
        rows = range(store.rows)
    for row in rows:
        now = ts_col[row]
        qcode = qname_col[row]
        qtype = qtype_col[row]
        scope = scope_col[row]
        ttl = ttl_col[row] if ttl_override is None else ttl_override

        # ECS cache: purge, then lookup, then insert on miss.
        while ecs_heap and ecs_heap[0][0] <= now:
            expiry, key = heappop(ecs_heap)
            current = ecs_expiry.get(key)
            if current is not None and current <= now:
                del ecs_expiry[key]
        if scope == 0:
            key = (qcode, qtype)
        else:
            version, value, masks = parsed[client_col[row]]
            key = (qcode, qtype, version, scope, value & masks[scope])
        expiry_now = ecs_expiry.get(key)
        if expiry_now is not None and expiry_now > now:
            hits_ecs += 1
        else:
            misses_ecs += 1
            ecs_expiry[key] = now + ttl
            heappush(ecs_heap, (now + ttl, key))
            if len(ecs_expiry) > max_ecs:
                max_ecs = len(ecs_expiry)

        # Plain cache: same sequence with the scope-free key.
        while plain_heap and plain_heap[0][0] <= now:
            expiry, key = heappop(plain_heap)
            current = plain_expiry.get(key)
            if current is not None and current <= now:
                del plain_expiry[key]
        key = (qcode, qtype)
        expiry_now = plain_expiry.get(key)
        if expiry_now is not None and expiry_now > now:
            hits_no_ecs += 1
        else:
            misses_no_ecs += 1
            plain_expiry[key] = now + ttl
            heappush(plain_heap, (now + ttl, key))
            if len(plain_expiry) > max_plain:
                max_plain = len(plain_expiry)

    return ReplayPartial(hits_ecs, misses_ecs, hits_no_ecs, misses_no_ecs,
                         max_ecs, max_plain)


def replay_partial_column_groups(stores: Iterable["ColumnarStore"],
                                 client_field: str,
                                 scope_field: str = "scope",
                                 ttl_field: str = "ttl",
                                 ttl_override: Optional[float] = None
                                 ) -> ReplayPartial:
    """Out-of-core twin of :func:`replay_partial_columns`.

    Replays a sequence of row-group stores (one bucket's groups of a
    pre-bucketed v2 file, in file order) through *one* pair of caches,
    so the counters equal a single :func:`replay_partial_columns` pass
    over the concatenated rows.  The subtlety is that v2 dictionary
    codes are group-local: the same qname can carry different codes in
    different groups.  Codes therefore re-map through a run-global
    interning table (first-appearance order, one dict lookup per
    dictionary *entry* per group), which restores the bijection the
    code-keyed cache keys rely on.  Client addresses parse once per
    distinct string across the whole run — the ECS key uses the parsed
    ``(version, value)`` directly, so no client-side remap is needed.

    Memory is bounded by one group's columns plus the caches (sized by
    the unique-key universe, not the row count); callers close each
    store as soon as the next one is requested.
    """
    ecs_expiry: Dict[tuple, float] = {}
    plain_expiry: Dict[tuple, float] = {}
    ecs_heap: List[Tuple[float, tuple]] = []
    plain_heap: List[Tuple[float, tuple]] = []
    heappush, heappop = heapq.heappush, heapq.heappop
    hits_ecs = misses_ecs = hits_no_ecs = misses_no_ecs = 0
    max_ecs = max_plain = 0
    #: qname string -> run-global code (first appearance across groups).
    qname_global: Dict[str, int] = {}
    #: client string -> index into ``parsed`` (parse once per distinct).
    parsed_index: Dict[str, int] = {}
    parsed: List[Tuple[int, int, Sequence[int]]] = []

    for store in stores:
        ts_col = store.column("ts")
        qname_col = store.column("qname")
        qtype_col = store.column("qtype")
        client_col = store.column(client_field)
        scope_col = store.column(scope_field)
        ttl_col = store.column(ttl_field)
        # Per-group remap tables: group-local code -> run-global handle.
        qmap = [qname_global.setdefault(value, len(qname_global))
                for value in store.dictionary("qname")]
        cmap = []
        for address in store.dictionary(client_field):
            index = parsed_index.get(address)
            if index is None:
                index = len(parsed)
                parsed_index[address] = index
                version, value = parse_addr(address)
                parsed.append((version, value,
                               _MASKS_BY_VERSION[version]))
            cmap.append(index)

        for row in range(store.rows):
            now = ts_col[row]
            qcode = qmap[qname_col[row]]
            qtype = qtype_col[row]
            scope = scope_col[row]
            ttl = ttl_col[row] if ttl_override is None else ttl_override

            while ecs_heap and ecs_heap[0][0] <= now:
                expiry, key = heappop(ecs_heap)
                current = ecs_expiry.get(key)
                if current is not None and current <= now:
                    del ecs_expiry[key]
            if scope == 0:
                key = (qcode, qtype)
            else:
                version, value, masks = parsed[cmap[client_col[row]]]
                key = (qcode, qtype, version, scope, value & masks[scope])
            expiry_now = ecs_expiry.get(key)
            if expiry_now is not None and expiry_now > now:
                hits_ecs += 1
            else:
                misses_ecs += 1
                ecs_expiry[key] = now + ttl
                heappush(ecs_heap, (now + ttl, key))
                if len(ecs_expiry) > max_ecs:
                    max_ecs = len(ecs_expiry)

            while plain_heap and plain_heap[0][0] <= now:
                expiry, key = heappop(plain_heap)
                current = plain_expiry.get(key)
                if current is not None and current <= now:
                    del plain_expiry[key]
            key = (qcode, qtype)
            expiry_now = plain_expiry.get(key)
            if expiry_now is not None and expiry_now > now:
                hits_no_ecs += 1
            else:
                misses_no_ecs += 1
                plain_expiry[key] = now + ttl
                heappush(plain_heap, (now + ttl, key))
                if len(plain_expiry) > max_plain:
                    max_plain = len(plain_expiry)

    return ReplayPartial(hits_ecs, misses_ecs, hits_no_ecs, misses_no_ecs,
                         max_ecs, max_plain)


def merge_partials(partials: Iterable[ReplayPartial]) -> ReplayResult:
    """Fold shard partials into one ReplayResult (order-independent)."""
    merged = ReplayPartial()
    for partial in partials:
        merged = merged.merge(partial)
    return merged.result()


def replay(records: Iterable, client_of, scope_of, ttl_of) -> ReplayResult:
    """Run the paired with/without-ECS replay over one record stream."""
    return replay_partial(records, client_of, scope_of, ttl_of).result()


# ---------------------------------------------------------------------------
# Figure 1 — blow-up CDF across the public service's egress resolvers


def public_cdn_blowups(dataset: PublicCdnDataset,
                       ttl: Optional[int] = None) -> List[float]:
    """Per-resolver blow-up factors, ready for a CDF.

    ``ttl`` overrides the trace TTL (the paper replays the 20-second CDN
    trace with 40- and 60-second TTLs to show the trend); ``ttl=0``
    is a valid override meaning nothing outlives its arrival instant.
    """
    out: List[float] = []
    for ip, records in dataset.by_resolver().items():
        if not records:
            continue
        result = replay_partial_batched(records, "ecs_address",
                                        ttl_override=ttl).result()
        out.append(result.blowup)
    out.sort()
    return out


def fig1_series(dataset: PublicCdnDataset,
                ttls: Sequence[int] = (20, 40, 60)) -> Dict[int, List[float]]:
    """The Fig 1 CDF series: TTL → sorted blow-up factors."""
    return {ttl: public_cdn_blowups(dataset, ttl) for ttl in ttls}


def cdf_points(sorted_values: Sequence[float]) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for a sorted sample."""
    n = len(sorted_values)
    return [(v, (i + 1) / n) for i, v in enumerate(sorted_values)]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (q in [0, 1])."""
    if not sorted_values:
        raise ValueError("empty sample")
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def overall_blowup(ecs_blowup: float, ecs_fraction: float) -> float:
    """Project the *overall* cache blow-up from the ECS-only blow-up.

    Section 9 notes the measured factors cover only the ECS-carrying slice
    of the cache; if a fraction ``ecs_fraction`` of cached responses carry
    ECS, the whole-cache factor is the convex combination with the non-ECS
    slice (factor 1).  Lets operators extrapolate to future ECS deployment
    levels.
    """
    if not 0.0 <= ecs_fraction <= 1.0:
        raise ValueError("ecs_fraction must be within [0, 1]")
    if ecs_blowup < 1.0:
        raise ValueError("ECS blow-up cannot be below 1")
    return ecs_fraction * ecs_blowup + (1.0 - ecs_fraction)


# ---------------------------------------------------------------------------
# Figure 2 — blow-up vs client-population fraction (All-Names resolver)


def _sampled_records(dataset: AllNamesDataset, fraction: float,
                     seed: int) -> List[AllNamesRecord]:
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    clients = dataset.client_ips
    if fraction >= 1.0:
        chosen = set(clients)
    else:
        rng = random.Random(seed)
        chosen = set(rng.sample(clients, max(1, int(len(clients) * fraction))))
    return [r for r in dataset.records if r.client_ip in chosen]


def allnames_replay(dataset: AllNamesDataset, fraction: float = 1.0,
                    seed: int = 0) -> ReplayResult:
    """Replay the All-Names trace for a random fraction of clients."""
    records = _sampled_records(dataset, fraction, seed)
    return replay_partial_batched(records, "client_ip").result()


def fig2_series(dataset: AllNamesDataset,
                fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5,
                                              0.6, 0.7, 0.8, 0.9, 1.0),
                seeds: Sequence[int] = (1, 2, 3)) -> List[Tuple[float, float]]:
    """(client fraction, mean blow-up) — the Fig 2 curve.

    Each point averages ``len(seeds)`` random client samples, as the paper
    averages three runs per fraction.
    """
    series: List[Tuple[float, float]] = []
    for fraction in fractions:
        values = [allnames_replay(dataset, fraction, seed).blowup
                  for seed in seeds]
        series.append((fraction, sum(values) / len(values)))
    return series


# ---------------------------------------------------------------------------
# Figure 3 — hit rate vs client-population fraction


def fig3_series(dataset: AllNamesDataset,
                fractions: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5,
                                              0.6, 0.7, 0.8, 0.9, 1.0),
                seeds: Sequence[int] = (1, 2, 3)
                ) -> List[Tuple[float, float, float]]:
    """(fraction, hit rate without ECS, hit rate with ECS) triples."""
    series: List[Tuple[float, float, float]] = []
    for fraction in fractions:
        results = [allnames_replay(dataset, fraction, seed) for seed in seeds]
        no_ecs = sum(r.hit_rate_no_ecs for r in results) / len(results)
        with_ecs = sum(r.hit_rate_ecs for r in results) / len(results)
        series.append((fraction, no_ecs, with_ecs))
    return series
