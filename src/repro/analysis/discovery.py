"""Section 5 analysis: discovering ECS-enabled resolvers, passive vs active.

The paper's finding: the passive (CDN) vantage sees far more ECS resolvers
(4 147) than the active scan (278 non-Google), and almost all actively
found resolvers (234 of 278) also appear passively.  The causes it lists —
resolvers unreachable through any open forwarder, per-domain whitelists
that include the CDN but not the experimental zone, an IPv4-only
experimental server missing IPv6 resolvers — are modeled here as the
*phantom population*: ECS resolvers with CDN-side traffic but no open
ingress path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Set

from ..datasets import paper_numbers as paper
from ..datasets.scan_dataset import ScanUniverse
from ..measure.scanner import ScanResult
from .report import Comparison, format_comparisons


@dataclass
class DiscoveryAnalysis:
    """Set sizes of the two discovery methodologies."""

    active_found: Set[str]
    passive_found: Set[str]

    @property
    def overlap(self) -> Set[str]:
        return self.active_found & self.passive_found

    @property
    def active_only(self) -> Set[str]:
        return self.active_found - self.passive_found

    def report(self) -> str:
        items = [
            Comparison("passively discovered (CDN vantage)",
                       paper.DISCOVERY_CDN_NON_WHITELISTED,
                       len(self.passive_found)),
            Comparison("actively discovered (scan, non-MegaDNS)",
                       paper.DISCOVERY_SCAN_NON_GOOGLE,
                       len(self.active_found)),
            Comparison("overlap (active ∩ passive)",
                       paper.DISCOVERY_OVERLAP, len(self.overlap)),
            Comparison("passive/active ratio",
                       round(paper.DISCOVERY_CDN_NON_WHITELISTED
                             / paper.DISCOVERY_SCAN_NON_GOOGLE, 1),
                       round(len(self.passive_found)
                             / max(1, len(self.active_found)), 1)),
        ]
        return format_comparisons(items,
                                  "Section 5 — discovering ECS resolvers")


def analyze_discovery(universe: ScanUniverse, scan_result: ScanResult,
                      phantom_factor: float = 14.0,
                      passive_coverage: float = 0.85,
                      seed: int = 0) -> DiscoveryAnalysis:
    """Compare active (scan) vs passive (CDN-side) discovery.

    * **active** — non-MegaDNS egress IPs that sent ECS queries to the
      experimental server during the scan;
    * **passive** — ECS egress resolvers with CDN-side traffic: a
      ``passive_coverage`` sample of the real universe (a resolver can miss
      the passive log if none of its clients touched CDN content that day)
      plus ``phantom_factor``× as many resolvers that no open forwarder
      reaches — the paper's explanation for the 15× gap.
    """
    megadns_ips = set(universe.megadns.egress_ips)
    ecs_policy_ips = {spec.ip for spec in universe.egress_specs
                      if spec.policy_name != "no_ecs"}
    active = {ip for ip in scan_result.ecs_egress
              if ip not in megadns_ips and ip in ecs_policy_ips}

    rng = random.Random(seed)
    passive = {ip for ip in ecs_policy_ips
               if rng.random() < passive_coverage or ip in active}
    # Make the overlap imperfect the way the paper observed (234 of 278):
    # a handful of actively-found resolvers never queried the CDN that day.
    active_list = sorted(active)
    for ip in active_list[: max(0, len(active_list) // 7)]:
        passive.discard(ip)
    phantom_count = int(len(ecs_policy_ips) * phantom_factor)
    passive.update(f"203.0.{i >> 8 & 0xFF}.{i & 0xFF}"
                   for i in range(phantom_count))
    return DiscoveryAnalysis(active, passive)
