"""Section 4 analysis: dataset summary statistics.

Each generated dataset reports the same headline numbers the paper's
section 4 gives for the real ones, scaled by the generator's scale factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..datasets import paper_numbers as paper
from ..datasets.allnames import AllNamesDataset, _sld_of
from ..datasets.cdn_dataset import CdnDataset
from ..datasets.public_cdn import PublicCdnDataset
from ..measure.scanner import ScanResult
from .report import Comparison, format_comparisons


def summarize_cdn(dataset: CdnDataset) -> str:
    """Section 4 headline numbers for a generated CDN dataset."""
    records = dataset.records
    ecs = sum(1 for r in records if r.has_ecs)
    items = [
        Comparison("ECS-enabled non-whitelisted resolvers",
                   paper.CDN_NON_WHITELISTED, len(dataset.resolvers)),
        Comparison("queries", paper.CDN_QUERIES, len(records),
                   note="generator scale applies"),
        Comparison("ECS query fraction",
                   round(paper.CDN_ECS_QUERIES / paper.CDN_QUERIES, 2),
                   round(ecs / max(1, len(records)), 2)),
        Comparison("IPv6 resolvers", paper.CDN_NON_WHITELISTED_V6,
                   sum(1 for s in dataset.resolvers if s.is_v6)),
    ]
    return format_comparisons(items, "Section 4 — CDN dataset")


def summarize_scan(result: ScanResult) -> str:
    """Section 4 headline numbers for a completed scan."""
    total_ingress = len(result.responding_ingress)
    items = [
        Comparison("open ingress resolvers", paper.SCAN_OPEN_INGRESS,
                   total_ingress, note="generator scale applies"),
        Comparison("ECS ingress fraction",
                   round(paper.SCAN_ECS_INGRESS / paper.SCAN_OPEN_INGRESS, 2),
                   round(len(result.ecs_ingress) / max(1, total_ingress), 2)),
        Comparison("ECS egress resolver IPs", paper.SCAN_EGRESS_IPS,
                   len(result.ecs_egress)),
    ]
    return format_comparisons(items, "Section 4 — Scan dataset")


def summarize_public_cdn(dataset: PublicCdnDataset) -> str:
    """Section 4 headline numbers for a Public Resolver/CDN trace."""
    items = [
        Comparison("egress resolver IPs", paper.PUBLIC_CDN_RESOLVER_IPS,
                   len(dataset.resolver_ips)),
        Comparison("queries", paper.PUBLIC_CDN_QUERIES,
                   len(dataset.records), note="generator scale applies"),
        Comparison("hours", paper.PUBLIC_CDN_HOURS,
                   round(dataset.duration_s / 3600, 1)),
        Comparison("all queries carry ECS", "yes",
                   "yes" if all(r.ecs_source_len for r in
                                dataset.records[:1000]) else "no"),
    ]
    return format_comparisons(items, "Section 4 — Public Resolver/CDN dataset")


def summarize_allnames(dataset: AllNamesDataset) -> str:
    """Section 4 headline numbers for an All-Names trace."""
    slds = {_sld_of(h) for h in dataset.hostnames}
    items = [
        Comparison("queries", paper.ALLNAMES_QUERIES, len(dataset.records),
                   note="generator scale applies"),
        Comparison("client IPs", paper.ALLNAMES_CLIENT_IPS,
                   len(dataset.client_ips)),
        Comparison("IPv4 /24 client subnets", paper.ALLNAMES_V4_SUBNETS,
                   dataset.v4_subnet_count),
        Comparison("hostnames", paper.ALLNAMES_HOSTNAMES,
                   len(dataset.hostnames)),
        Comparison("second-level domains", paper.ALLNAMES_SLDS, len(slds)),
        Comparison("hours", paper.ALLNAMES_HOURS,
                   round(dataset.duration_s / 3600, 1)),
    ]
    return format_comparisons(items, "Section 4 — All-Names Resolver dataset")
