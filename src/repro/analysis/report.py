"""Report formatting: the tables and series the benchmarks print.

The benchmark harness prints each reproduced table/figure as text in the
same row/series structure the paper uses, with a paper-reported column next
to the measured one so the shape comparison is immediate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

Cell = Union[str, int, float, None]


def _fmt(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None) -> str:
    """Render an aligned text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Comparison:
    """One paper-vs-measured line item."""

    metric: str
    paper: Cell
    measured: Cell
    note: str = ""


def format_comparisons(items: Sequence[Comparison], title: str) -> str:
    """Render a paper-vs-measured table."""
    return format_table(
        ("metric", "paper", "measured", "note"),
        [(c.metric, c.paper, c.measured, c.note) for c in items],
        title=title)


def format_network_stats(stats, title: str = "Network traffic") -> str:
    """Render a :class:`repro.net.transport.NetworkStats` snapshot.

    Takes the stats object duck-typed (rather than importing the network
    layer) so analysis stays import-light; any object with ``datagrams``,
    ``bytes_sent``, ``timeouts``, ``drops`` and the ``timeout_rate()`` /
    ``drop_rate()`` accessors renders.
    """
    return format_table(
        ("metric", "value"),
        [("datagrams sent", stats.datagrams),
         ("bytes sent", stats.bytes_sent),
         ("timeouts", stats.timeouts),
         ("drops", stats.drops),
         ("faults injected", getattr(stats, "faults_injected", 0)),
         ("timeout rate", f"{stats.timeout_rate():.2%}"),
         ("drop rate", f"{stats.drop_rate():.2%}")],
        title=title)


def cdf_table(series: Dict[str, Sequence[float]],
              quantiles: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
              title: str = "CDF") -> str:
    """Render quantiles of several sorted samples side by side."""
    headers = ["quantile"] + list(series.keys())
    rows: List[List[Cell]] = []
    for q in quantiles:
        row: List[Cell] = [f"p{int(q * 100)}"]
        for values in series.values():
            if not values:
                row.append(None)
                continue
            idx = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
            row.append(float(values[idx]))
        rows.append(row)
    return format_table(headers, rows, title=title)
