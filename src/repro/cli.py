"""Command-line interface: regenerate the paper's experiments from a shell.

Usage::

    python -m repro.cli <command> [options]
    repro-ecs <command> [options]            # after pip install

Commands
--------
scan        run the active campaign: scan → discovery → Table 1 → hidden
census      classify a CDN-vantage resolver population (sections 6.1/6.2)
caching     run the section 6.3 twin-query caching experiment
blowup      the section 7 cache replays (Figures 1–3)
pitfalls    the section 8 labs (Table 2, Figures 6–8)
generate    write a synthetic dataset to a trace file (JSONL or columnar)
replay      run the section 7 cache replay over a saved trace
convert     convert a trace between JSONL and the columnar format
dataset     inspect an on-disk trace file (``dataset info FILE``)
chaos       run the scan campaign under a fault-injection preset
all         every analysis command, sequentially
lint        run the repro.staticcheck invariant linter (RS001-RS100,
            interprocedural RS201-RS204 under --graph)

Every command accepts ``--seed`` and a size knob and writes rendered
reports to ``--out`` (default: print to stdout only); ``--quiet``
silences stdout.  ``generate``, ``blowup``, ``replay``, ``chaos`` and
``all`` also take ``--workers N`` / ``--shards K`` plus the execution
knobs ``--pool persistent|spawn-per-batch`` and ``--chunk-size C``:
work is split into K deterministically-seeded shards executed on N
processes via compact shard specs, and the merged output is
byte-identical for every (N, pool, C) combination (see
``docs/engine.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, TextIO

from .analysis import (analyze_caching_behavior, analyze_discovery,
                       analyze_hidden_resolvers, analyze_probing,
                       analyze_root_violations, build_table1, cdf_table,
                       fig1_series, fig2_series, fig3_series,
                       format_network_stats, format_table,
                       run_flattening_case_study, run_table2, summarize_scan)
from .analysis.flattening import FlatteningLab
from .analysis.mapping_quality import (MappingQualityLab,
                                       crossover_prefix_length,
                                       measure_mapping_quality)
from .analysis.unroutable import UnroutableLab
from .datasets import CdnDatasetBuilder, ScanUniverseBuilder
from .datasets.columnar import (SCHEMAS, columnar_to_jsonl,
                                convert_columnar, file_info, is_columnar,
                                jsonl_to_columnar)
from .datasets.ditl import generate_root_trace
from .engine import (DEFAULT_SHARDS, POOL_MODES, ShardSpec, WorkerPool,
                     generate_dataset_spec, generate_jsonl)
from .engine import pool as engine_pool
from .engine.executor import EngineReport
from .engine.replay import replay_columnar_sharded, replay_jsonl_sharded
from .faults.chaos import run_chaos
from .faults.presets import preset, preset_names
from .measure import Scanner
from .obs import (LiveSink, SinkEmitter, TelemetryServer, observe,
                  profile_call, write_chrome_trace, write_prometheus,
                  write_spans_jsonl, write_timeline_jsonl)
from .obs import live as obs_live
from .units import human_bytes, human_count


class _Reporter:
    """Collects report sections, printing and optionally saving them."""

    def __init__(self, out_dir: Optional[str], quiet: bool = False,
                 show_report: bool = False):
        self.out_dir = Path(out_dir) if out_dir else None
        self.quiet = quiet
        self.show_report = show_report
        if self.out_dir:
            self.out_dir.mkdir(parents=True, exist_ok=True)

    def emit(self, name: str, text: str) -> None:
        """Render one report section to stdout and (optionally) a file.

        ``name`` may contain ``/`` separators; parent directories are
        created per file, so nested layouts like ``fig/1`` just work.
        """
        if not self.quiet:
            print(text)
            print()
        if self.out_dir:
            path = self.out_dir / f"{name}.txt"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")

    def note(self, text: str) -> None:
        """Print an incidental status line (never written to files).

        Engine throughput and progress lines go through here so shard
        timing — which varies run to run — can never leak into the
        deterministic report files, and ``--quiet`` silences them in
        shard workers.
        """
        if not self.quiet:
            print(text)

    def engine(self, report: EngineReport) -> None:
        """Print an engine run's throughput note.

        The single choke point for engine output: every engine-flag
        command routes through here, so ``--quiet`` suppresses the notes
        uniformly and ``--report`` switches all of them from the one-line
        summary to the full per-shard breakdown.  Like :meth:`note`,
        never written to report files.
        """
        self.note(report.report() if self.show_report else report.summary())


class _LiveProgress:
    """Rate-limited single-line progress renderer for ``--live``.

    Installed as the :class:`~repro.obs.live.LiveSink` beat callback; it
    rewrites one stderr line (``\\r``) at most ~5 times a second, so a
    long sharded run narrates itself without flooding the terminal.
    Strictly out-of-band: it writes to stderr only, never to reports,
    so determinism diffs never see it.
    """

    #: Minimum seconds between repaints (run_end always repaints).
    _INTERVAL = 0.2

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._last = 0.0
        self._done = 0
        self._total = 0
        self._records = 0
        self._task = ""
        self._wrote = False

    def __call__(self, sink: LiveSink,
                 beat: "obs_live.Heartbeat") -> None:
        if beat.kind == "run_start":
            self._task = beat.task
            self._total += beat.shards
        elif beat.kind == "shard_end":
            self._done += 1
            self._records += beat.records
        elif beat.kind not in ("progress", "run_end"):
            return
        now = time.monotonic()
        if beat.kind != "run_end" and now - self._last < self._INTERVAL:
            return
        self._last = now
        self._stream.write(
            f"\r[live] {self._task}: {self._done}/{self._total} shards, "
            f"{human_count(self._records)} records")
        self._stream.flush()
        self._wrote = True

    def finish(self) -> None:
        """Terminate the progress line so later output starts clean."""
        if self._wrote:
            self._stream.write("\n")
            self._stream.flush()


def cmd_scan(args: argparse.Namespace, reporter: _Reporter) -> None:
    """The active campaign: scan, discovery, Table 1, hidden resolvers."""
    universe = ScanUniverseBuilder(seed=args.seed,
                                   ingress_count=args.ingress).build()
    result = Scanner(universe).scan()
    reporter.emit("scan_summary", summarize_scan(result))
    reporter.emit("discovery", analyze_discovery(universe, result).report())
    reporter.emit("table1_scan",
                  build_table1(scan_result=result).report())
    reporter.emit("hidden",
                  analyze_hidden_resolvers(universe, result).report())
    reporter.emit("network_scan", format_network_stats(
        universe.net.stats, title="Network traffic (scan campaign)"))


def cmd_census(args: argparse.Namespace, reporter: _Reporter) -> None:
    """CDN-vantage classification: sections 6.1/6.2 plus the DITL check."""
    dataset = CdnDatasetBuilder(scale=args.scale, seed=args.seed,
                                duration_s=args.hours * 3600.0).build()
    reporter.emit("probing", analyze_probing(dataset).report())
    reporter.emit("table1_cdn", build_table1(cdn_dataset=dataset).report())
    trace = generate_root_trace(resolver_count=400, violators=15,
                                seed=args.seed)
    reporter.emit("root_violations", analyze_root_violations(trace).report())


def cmd_caching(args: argparse.Namespace, reporter: _Reporter) -> None:
    """The section 6.3 twin-query caching-behavior experiment."""
    universe = ScanUniverseBuilder(seed=args.seed,
                                   ingress_count=args.ingress).build()
    reporter.emit("caching_behavior",
                  analyze_caching_behavior(universe).report())
    reporter.emit("network_caching", format_network_stats(
        universe.net.stats, title="Network traffic (caching experiment)"))


def cmd_blowup(args: argparse.Namespace, reporter: _Reporter) -> None:
    """The section 7 cache replays: Figures 1, 2 and 3."""
    spec = ShardSpec.create("public-cdn", shard_count=args.shards,
                            scale=args.scale, seed=args.seed,
                            duration_s=args.hours * 3600.0)
    public_cdn, engine_report = generate_dataset_spec(
        spec, workers=args.workers, chunk_size=args.chunk_size)
    reporter.engine(engine_report)
    series = fig1_series(public_cdn, ttls=(20, 40, 60))
    reporter.emit("fig1", cdf_table(
        {f"TTL {t}s": v for t, v in series.items()},
        title="Figure 1 — cache blow-up factor CDF"))

    allnames, engine_report = generate_dataset_spec(
        ShardSpec.create("allnames", shard_count=args.shards,
                         scale=args.allnames_scale, seed=args.seed),
        workers=args.workers, chunk_size=args.chunk_size)
    reporter.engine(engine_report)
    fractions = (0.1, 0.25, 0.5, 0.75, 1.0)
    f2 = fig2_series(allnames, fractions=fractions, seeds=(1, 2))
    reporter.emit("fig2", format_table(
        ("clients", "blow-up"),
        [(f"{f:.0%}", round(b, 2)) for f, b in f2],
        title="Figure 2 — blow-up vs client fraction"))
    f3 = fig3_series(allnames, fractions=fractions, seeds=(1, 2))
    reporter.emit("fig3", format_table(
        ("clients", "no ECS", "with ECS"),
        [(f"{f:.0%}", f"{a:.1%}", f"{b:.1%}") for f, a, b in f3],
        title="Figure 3 — cache hit rate"))


def cmd_pitfalls(args: argparse.Namespace, reporter: _Reporter) -> None:
    """The section 8 labs: Table 2 and Figures 6-8."""
    table2 = run_table2(UnroutableLab.build(seed=args.seed))
    reporter.emit("table2", table2.report())

    lab = MappingQualityLab.build(probe_count=args.probes, seed=args.seed)
    for cdn, qname, fig in ((lab.cdn1, lab.cdn1_qname, "fig6"),
                            (lab.cdn2, lab.cdn2_qname, "fig7")):
        series = measure_mapping_quality(lab, cdn, qname)
        cliff = crossover_prefix_length(series)
        reporter.emit(fig, series.report(
            f"{fig.upper()} — time-to-connect by prefix length "
            f"(cliff at /{cliff})"))

    timings = run_flattening_case_study(FlatteningLab.build())
    reporter.emit("fig8", timings.report())


def cmd_generate(args: argparse.Namespace, reporter: _Reporter) -> None:
    """Write one synthetic dataset to a JSONL trace file.

    Generation is sharded through :mod:`repro.engine` by spec dispatch:
    workers rebuild the dataset builder from a compact
    :class:`~repro.engine.sharding.ShardSpec` and write their own
    ``<file>.shardNN`` siblings, then an order-stable merge produces the
    final trace and removes the shard files.  No record payloads cross
    the pool boundary, and the merged bytes are identical for any
    ``--workers`` / ``--pool`` / ``--chunk-size`` value.
    """
    if args.dataset == "allnames":
        spec = ShardSpec.create("allnames", shard_count=args.shards,
                                scale=args.scale, seed=args.seed)
    else:  # public-cdn, cdn: same knobs, different registry name
        spec = ShardSpec.create(args.dataset, shard_count=args.shards,
                                scale=args.scale, seed=args.seed,
                                duration_s=args.hours * 3600.0)
    if args.format == "columnar":
        from .engine import generate_columnar
        count, engine_report = generate_columnar(
            spec, args.file, workers=args.workers,
            chunk_size=args.chunk_size,
            row_group_rows=args.row_group_rows)
    else:
        if args.row_group_rows is not None:
            raise SystemExit("--row-group-rows requires --format columnar")
        count, engine_report = generate_jsonl(
            spec, args.file, workers=args.workers,
            chunk_size=args.chunk_size)
    reporter.engine(engine_report)
    reporter.note(f"wrote {count} {args.dataset} records to {args.file}")


def cmd_convert(args: argparse.Namespace, reporter: _Reporter) -> None:
    """Convert a trace between JSONL and the columnar layouts.

    The direction is auto-detected from the source file's magic unless
    ``--to`` forces it; every direction streams with bounded memory.
    JSONL -> columnar -> JSONL round-trips byte-identically, and so
    does columnar v1 -> v2 -> v1.  ``--row-group-rows`` selects the v2
    row-group layout for any columnar output (default: v1 for
    JSONL sources, re-layout target for columnar sources);
    ``--to columnar`` on a columnar source re-layouts between v1 and
    v2.  ``--bucket-shards N`` pre-buckets a columnar output by qname
    for out-of-core row-range replay with ``--shards N``.
    """
    target = args.to
    if target == "auto":
        target = "jsonl" if is_columnar(args.src) else "columnar"
    if target == "jsonl":
        if args.row_group_rows is not None or args.bucket_shards is not None:
            raise SystemExit("--row-group-rows/--bucket-shards apply to "
                             "columnar output only")
        count = columnar_to_jsonl(args.src, args.dst)
    elif is_columnar(args.src):
        count = convert_columnar(args.src, args.dst,
                                 row_group_rows=args.row_group_rows,
                                 bucket_shards=args.bucket_shards)
    else:
        count = jsonl_to_columnar(args.src, args.dst, args.dataset,
                                  row_group_rows=args.row_group_rows)
        if args.bucket_shards is not None:
            # Bucket in place: the flat columnar file becomes the
            # pre-bucketed layout via a sibling temp rewrite.
            staging = Path(args.dst).with_name(Path(args.dst).name
                                               + ".bucketing")
            Path(args.dst).rename(staging)
            try:
                convert_columnar(staging, args.dst,
                                 row_group_rows=args.row_group_rows,
                                 bucket_shards=args.bucket_shards)
            finally:
                staging.unlink()
    reporter.note(f"converted {count} {args.dataset} records: "
                  f"{args.src} -> {args.dst} ({target})")


def _quantity(value: int, fmt: Callable[[int], str]) -> str:
    """Render a count/size humanized, keeping the exact integer visible.

    Small values where the humanized form *is* the exact value ("875 B",
    "312") render once; larger ones render as ``1.4 GiB (1475739648)``.
    """
    pretty = fmt(value)
    if pretty in (str(value), f"{value} B"):
        return pretty
    return f"{pretty} ({value})"


def cmd_dataset(args: argparse.Namespace, reporter: _Reporter) -> None:
    """Inspect an on-disk dataset file (``dataset info FILE``).

    For a columnar trace the report comes from the header alone — no
    segment is read — and breaks the footprint down per column; for a
    JSONL trace it falls back to line/byte counts.  Row and byte totals
    render through :mod:`repro.units` (``1.4 GiB``, ``3.8B rows``) with
    the exact integer alongside, so the table stays grep-able.
    """
    path = Path(args.file)
    if is_columnar(path):
        info = file_info(path)
        rows = [("schema", info["schema"]),
                ("format version", info["version"]),
                ("rows", _quantity(info["rows"], human_count)),
                ("file bytes", _quantity(info["file_bytes"], human_bytes)),
                ("bytes/row", round(info["bytes_per_row"], 2)),
                ("header bytes",
                 _quantity(info["header_bytes"], human_bytes))]
        if "row_groups" in info:
            rows.append(("row groups", info["row_groups"]))
            rows.append(("row-group rows", info["row_group_rows"]))
            rows.append(("qname buckets", info["buckets"]
                         if info["buckets"] is not None else "-"))
        reporter.emit("dataset_info", format_table(
            ("property", "value"), rows,
            title=f"Columnar trace {path}"))
        reporter.emit("dataset_columns", format_table(
            ("column", "kind", "data B", "null B", "dict B", "dict entries"),
            [(c["name"], c["kind"], c["data_bytes"], c["null_bytes"],
              c["dict_bytes"], c["dict_entries"])
             for c in info["columns"]],
            title="Per-column segments"))
    else:
        size = path.stat().st_size
        with open(path, "r", encoding="utf-8") as fh:
            lines = sum(1 for line in fh if line.strip())
        reporter.emit("dataset_info", format_table(
            ("property", "value"),
            [("format", "jsonl"),
             ("records", _quantity(lines, human_count)),
             ("file bytes", _quantity(size, human_bytes)),
             ("bytes/row", round(size / lines, 2) if lines else 0.0)],
            title=f"JSONL trace {path}"))


def cmd_replay(args: argparse.Namespace, reporter: _Reporter) -> None:
    """Run the section 7 cache replay over a saved trace.

    The trace is partitioned by qname into ``--shards`` shards replayed
    on ``--workers`` processes; per-shard partials merge into one
    result, byte-identical for any worker count.  The file format is
    auto-detected: for a columnar trace every worker mmaps the same
    file and replays packed columns; for JSONL the parent routes raw
    lines and workers parse their own shard.  Either way no record
    objects cross the pool boundary, and both formats of one trace
    render the identical report.
    """
    if is_columnar(args.file):
        result, engine_report = replay_columnar_sharded(
            args.file, args.dataset, shards=args.shards,
            workers=args.workers, chunk_size=args.chunk_size)
    else:
        result, engine_report = replay_jsonl_sharded(
            args.file, args.dataset, shards=args.shards,
            workers=args.workers, chunk_size=args.chunk_size)
    reporter.engine(engine_report)
    reporter.emit("replay", format_table(
        ("metric", "value"),
        [("records replayed", engine_report.total_records),
         ("peak cache with ECS", result.max_size_ecs),
         ("peak cache without ECS", result.max_size_no_ecs),
         ("blow-up factor", round(result.blowup, 2)),
         ("hit rate with ECS", f"{result.hit_rate_ecs:.1%}"),
         ("hit rate without ECS", f"{result.hit_rate_no_ecs:.1%}")],
        title=f"Replay of {args.file}"))


def cmd_chaos(args: argparse.Namespace, reporter: _Reporter) -> None:
    """The scan campaign under a composed fault plan (repro.faults).

    The plan binds its random streams from ``--fault-seed`` per shard,
    so the rendered report is byte-identical for every ``--workers``
    value — the CI chaos-smoke job diffs two runs to prove it.
    """
    plan = preset(args.preset)
    result, engine_report = run_chaos(
        plan, seed=args.seed, fault_seed=args.fault_seed,
        ingress=args.ingress, shards=args.shards, workers=args.workers,
        chunk_size=args.chunk_size)
    reporter.engine(engine_report)
    reporter.emit("chaos", result.report())


#: Analysis commands, in the order ``all`` runs them.
_ANALYSIS_COMMANDS: Dict[str, Callable[[argparse.Namespace, _Reporter],
                                       None]] = {
    "scan": cmd_scan,
    "census": cmd_census,
    "caching": cmd_caching,
    "blowup": cmd_blowup,
    "pitfalls": cmd_pitfalls,
}

_COMMANDS: Dict[str, Callable[[argparse.Namespace, _Reporter], None]] = {
    **_ANALYSIS_COMMANDS,
    "generate": cmd_generate,
    "replay": cmd_replay,
    "convert": cmd_convert,
    "dataset": cmd_dataset,
    "chaos": cmd_chaos,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-ecs",
        description="Reproduce 'A Look at the ECS Behavior of DNS "
                    "Resolvers' (IMC 2019)")
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic seed for every generator")
    parser.add_argument("--out", default=None,
                        help="directory to write rendered reports into")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress stdout (reports still write to --out);"
                             " keeps shard workers from interleaving output")
    parser.add_argument("--report", action="store_true",
                        help="print the full per-shard engine breakdown "
                             "instead of the one-line summary")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="collect runtime metrics and write them in "
                             "Prometheus text format (out-of-band: reports "
                             "are byte-identical with or without)")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="record query-lifecycle spans and write them "
                             "as JSONL (out-of-band, like --metrics-out)")
    parser.add_argument("--profile", default=None, metavar="FILE",
                        help="run under cProfile and write the hottest "
                             "cumulative-time functions to FILE")
    parser.add_argument("--serve-metrics", nargs="?", type=int, const=0,
                        default=None, metavar="PORT",
                        help="serve live telemetry over HTTP while the "
                             "command runs: /metrics (Prometheus text), "
                             "/healthz, /run (JSON progress); pass an "
                             "explicit PORT before the subcommand "
                             "(0 picks a free port)")
    parser.add_argument("--timeline-out", default=None, metavar="FILE",
                        help="export the run timeline after the command: "
                             "Chrome trace-event JSON when FILE ends in "
                             ".json (opens in Perfetto), JSONL otherwise")
    parser.add_argument("--live", action="store_true",
                        help="render a one-line live progress ticker on "
                             "stderr (out-of-band, like --serve-metrics)")
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError(
                f"must be a positive integer, got {value!r}")
        return parsed

    def add_engine_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--workers", type=positive_int, default=1,
                         help="worker processes for sharded execution "
                              "(output is byte-identical for any value)")
        cmd.add_argument("--shards", type=positive_int, default=DEFAULT_SHARDS,
                         help="shard count; part of the experiment's "
                              "identity, independent of --workers")
        cmd.add_argument("--pool", choices=POOL_MODES, default="persistent",
                         help="worker pool lifecycle: one pool reused for "
                              "the whole command (persistent, default) or "
                              "a fresh pool per sharded batch "
                              "(spawn-per-batch); never affects output")
        cmd.add_argument("--chunk-size", type=positive_int, default=None,
                         help="consecutive shards per pool submission "
                              "(default: auto); dispatch detail only, "
                              "never affects output")

    scan = sub.add_parser("scan", help="active scan campaign (sections 4/5/8.2)")
    scan.add_argument("--ingress", type=int, default=300,
                      help="open ingress resolvers to simulate")

    census = sub.add_parser("census",
                            help="CDN-vantage classification (sections 6.1/6.2)")
    census.add_argument("--scale", type=float, default=0.01,
                        help="population scale vs the paper's 4147 resolvers")
    census.add_argument("--hours", type=float, default=4.0,
                        help="simulated log duration")

    caching = sub.add_parser("caching",
                             help="twin-query caching experiment (section 6.3)")
    caching.add_argument("--ingress", type=int, default=100)

    blowup = sub.add_parser("blowup", help="cache replays (section 7)")
    blowup.add_argument("--scale", type=float, default=0.005,
                        help="Public Resolver/CDN scale")
    blowup.add_argument("--allnames-scale", type=float, default=0.3)
    blowup.add_argument("--hours", type=float, default=0.5)
    add_engine_flags(blowup)

    pitfalls = sub.add_parser("pitfalls", help="section 8 labs")
    pitfalls.add_argument("--probes", type=int, default=120,
                          help="Atlas-like probes for Figs 6/7")

    generate = sub.add_parser("generate",
                              help="write a synthetic dataset as JSONL")
    generate.add_argument("dataset",
                          choices=("allnames", "public-cdn", "cdn"))
    generate.add_argument("file", help="output JSONL path")
    generate.add_argument("--scale", type=float, default=0.05)
    generate.add_argument("--hours", type=float, default=1.0)
    generate.add_argument("--format", choices=("jsonl", "columnar"),
                          default="jsonl",
                          help="output trace format (columnar: packed "
                               "columns, mmap-able, ~2.5x smaller)")
    generate.add_argument("--row-group-rows", type=positive_int,
                          default=None,
                          help="with --format columnar: keep the final "
                               "file in the v2 row-group layout with "
                               "this many rows per group (default: v1 "
                               "single-block layout); generation itself "
                               "always streams with bounded memory")
    add_engine_flags(generate)

    replay_cmd = sub.add_parser("replay",
                                help="cache replay over a saved trace")
    replay_cmd.add_argument("dataset", choices=("allnames", "public-cdn"))
    replay_cmd.add_argument("file",
                            help="input trace path (JSONL or columnar; "
                                 "auto-detected)")
    add_engine_flags(replay_cmd)

    convert = sub.add_parser(
        "convert", help="convert a trace between JSONL and columnar")
    convert.add_argument("dataset", choices=sorted(SCHEMAS),
                         help="record schema of the trace")
    convert.add_argument("src", help="input trace path")
    convert.add_argument("dst", help="output trace path")
    convert.add_argument("--to", choices=("auto", "columnar", "jsonl"),
                         default="auto",
                         help="target format (auto: the opposite of "
                              "what src is; 'columnar' on a columnar "
                              "src re-layouts between v1 and v2)")
    convert.add_argument("--row-group-rows", type=positive_int,
                         default=None,
                         help="columnar output: write the v2 row-group "
                              "layout with this many rows per group "
                              "(default: v1 single block)")
    convert.add_argument("--bucket-shards", type=positive_int,
                         default=None,
                         help="columnar output: pre-bucket rows by "
                              "qname for out-of-core row-range replay "
                              "with --shards N")

    dataset_cmd = sub.add_parser(
        "dataset", help="inspect an on-disk dataset file")
    dataset_sub = dataset_cmd.add_subparsers(dest="dataset_action",
                                             required=True)
    dataset_info = dataset_sub.add_parser(
        "info", help="describe a trace file (columnar: header only)")
    dataset_info.add_argument("file", help="trace path (JSONL or columnar)")

    chaos = sub.add_parser(
        "chaos", help="scan campaign under fault injection (repro.faults)")
    chaos.add_argument("--preset", default="lossy", choices=preset_names(),
                       help="named fault plan to install on the network")
    chaos.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault plan's random streams "
                            "(independent of --seed, which builds the "
                            "universe)")
    chaos.add_argument("--ingress", type=int, default=120,
                       help="open ingress resolvers to probe")
    add_engine_flags(chaos)

    lint = sub.add_parser(
        "lint", help="run the repro.staticcheck invariant linter")
    from .staticcheck.__main__ import add_lint_arguments
    add_lint_arguments(lint)

    all_cmd = sub.add_parser("all", help="run every command")
    all_cmd.add_argument("--ingress", type=int, default=200)
    all_cmd.add_argument("--scale", type=float, default=0.005)
    all_cmd.add_argument("--allnames-scale", type=float, default=0.2)
    all_cmd.add_argument("--hours", type=float, default=0.5)
    all_cmd.add_argument("--probes", type=int, default=100)
    add_engine_flags(all_cmd)
    return parser


def _dispatch(args: argparse.Namespace, reporter: _Reporter) -> None:
    """Run the selected command (or, for ``all``, every analysis).

    Engine commands run against one :class:`WorkerPool` for their whole
    duration: with ``--pool persistent`` (the default) the worker
    processes spawn once and serve every sharded call the command makes
    — for ``all``, that is every sub-command — while ``--pool
    spawn-per-batch`` reproduces the legacy pool-per-batch lifecycle.
    The pool is installed in the ambient slot so library code reaches it
    without threading it through every call.
    """
    workers = getattr(args, "workers", 1)
    pool = (WorkerPool(workers, mode=args.pool)
            if workers > 1 else None)
    previous = engine_pool.activate(pool) if pool is not None else None
    try:
        if args.command == "all":
            for name, command in _ANALYSIS_COMMANDS.items():
                reporter.note(f"### {name}\n")
                command(args, reporter)
            return
        _COMMANDS[args.command](args, reporter)
    finally:
        if pool is not None:
            engine_pool.activate(previous)
            pool.shutdown()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Observability flags wrap the whole command: metrics/tracing activate
    before any experiment runs and export after it finishes, so one
    ``.prom`` / one span JSONL covers everything the command did
    (including all sub-commands of ``all``).  The collectors are
    out-of-band — reports are byte-identical with the flags on or off.

    The live plane (``--serve-metrics`` / ``--timeline-out`` /
    ``--live``) follows the same contract: a :class:`LiveSink` is wired
    up *before* the command dispatches (so worker pools install the
    heartbeat side channel at spawn), torn down after, and everything it
    collects rides heartbeats — experiment outputs stay byte-identical
    at any worker count with the plane on or off.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint":
        # Static analysis never runs an experiment: no reporter, no
        # observability session, exit code straight from the linter.
        from .staticcheck.__main__ import run_from_args
        return run_from_args(args)
    reporter = _Reporter(args.out, quiet=args.quiet,
                         show_report=args.report)
    want_metrics = args.metrics_out is not None
    want_traces = args.trace_out is not None
    live_enabled = (args.serve_metrics is not None
                    or args.timeline_out is not None or args.live)
    progress = _LiveProgress() if args.live else None
    sink: Optional[LiveSink] = None
    server: Optional[TelemetryServer] = None
    previous_emitter: Optional[obs_live.LiveEmitter] = None
    if live_enabled:
        # Shard registries ride shard_end heartbeats, so the sink needs
        # metrics capture on even when no --metrics-out was asked for.
        sink = LiveSink(on_beat=progress)
        previous_emitter = obs_live.activate(SinkEmitter(sink))
        if args.serve_metrics is not None:
            server = TelemetryServer(sink, port=args.serve_metrics)
            port = server.start()
            reporter.note(f"serving live telemetry on "
                          f"http://127.0.0.1:{port} "
                          f"(/metrics, /healthz, /run)")
    try:
        with observe(metrics=want_metrics or live_enabled,
                     tracing=want_traces) as session:
            if args.profile is not None:
                _, stats_text = profile_call(
                    _dispatch, args, reporter,
                    title=f"repro-ecs {args.command}")
                path = Path(args.profile)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(stats_text + "\n")
                reporter.note(f"wrote profile to {args.profile}")
            else:
                _dispatch(args, reporter)
    finally:
        if live_enabled:
            obs_live.activate(previous_emitter)
            if server is not None:
                server.stop()
            if sink is not None:
                sink.close()
            if progress is not None:
                progress.finish()
    if args.timeline_out is not None and sink is not None:
        events = sink.timeline.events()
        timeline_path = Path(args.timeline_out)
        if timeline_path.suffix == ".json":
            write_chrome_trace(events, timeline_path)
        else:
            write_timeline_jsonl(events, timeline_path,
                                 dropped=sink.timeline.dropped)
        reporter.note(f"wrote {len(events)} timeline events "
                      f"to {args.timeline_out}")
    if want_metrics:
        write_prometheus(session.registry, args.metrics_out)
        reporter.note(f"wrote metrics to {args.metrics_out}")
    if want_traces:
        write_spans_jsonl(session.tracer.spans, args.trace_out,
                          dropped=session.tracer.dropped)
        reporter.note(f"wrote {len(session.tracer.spans)} spans "
                      f"to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
