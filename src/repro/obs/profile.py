"""cProfile hooks: wrap any task and report top cumulative functions.

:func:`profile_call` is the generic wrapper the CLI's ``--profile`` flag
uses — it runs a callable (typically a whole sharded command) under
:mod:`cProfile` and renders the hottest functions by cumulative time.
:func:`profiled` wraps a shard worker function so individual shards can
be profiled through :func:`repro.engine.executor.run_sharded` without
changing the executor.

Profiling is strictly observational: the wrapped callable's return value
passes through untouched, so profiled runs keep producing byte-identical
experiment outputs (only slower).
"""

from __future__ import annotations

import cProfile
import functools
import pstats
from typing import Any, Callable, Dict, List, Tuple

#: Rows shown in a rendered profile report.
DEFAULT_TOP = 25


def render_stats(profile: cProfile.Profile, top_n: int = DEFAULT_TOP,
                 title: str = "profile") -> str:
    """Top-``top_n`` functions by cumulative time, as an aligned report.

    Rows sort by ``(cumulative time desc, location asc)`` — the
    location tiebreak makes ordering stable where ``pstats`` leaves
    equal-time entries in hash order, so the same profile renders
    identically on every platform and Python build.
    """
    stats_map: Dict[Tuple[str, int, str], Any] = getattr(
        pstats.Stats(profile), "stats", {})
    rows: List[Tuple[float, float, int, int, str]] = []
    for (filename, lineno, funcname), entry in stats_map.items():
        calls, primitive, tottime, cumtime = (int(entry[0]), int(entry[1]),
                                              float(entry[2]),
                                              float(entry[3]))
        rows.append((cumtime, tottime, calls, primitive,
                     f"{filename}:{lineno}({funcname})"))
    rows.sort(key=lambda row: (-row[0], row[4]))
    lines = [f"[profile] {title} — top {top_n} by cumulative time",
             f"{'cumtime':>10} {'tottime':>10} {'ncalls':>12}  function"]
    for cumtime, tottime, calls, primitive, location in rows[:top_n]:
        ncalls = str(calls) if calls == primitive \
            else f"{calls}/{primitive}"
        lines.append(f"{cumtime:10.6f} {tottime:10.6f} {ncalls:>12}  "
                     f"{location}")
    lines.append(f"({len(rows)} functions total)")
    return "\n".join(lines)


def profile_call(fn: Callable[..., Any], *args: Any,
                 top_n: int = DEFAULT_TOP, title: str = "profile",
                 **kwargs: Any) -> Tuple[Any, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is the rendered
    top-cumulative-functions table.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile.disable()
    return result, render_stats(profile, top_n=top_n, title=title)


def profiled(fn: Callable[..., Any], top_n: int = DEFAULT_TOP,
             sink: Callable[[str], None] = print) -> Callable[..., Any]:
    """Wrap a (shard) function so every call is profiled.

    The wrapper stays picklable as long as ``fn`` and ``sink`` are
    module-level, so it can be handed to ``run_sharded`` in place of the
    raw worker function; each shard's report goes through ``sink``.
    """
    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result, report = profile_call(fn, *args, top_n=top_n,
                                      title=getattr(fn, "__name__", "shard"),
                                      **kwargs)
        sink(report)
        return result

    return wrapper
