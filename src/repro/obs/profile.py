"""cProfile hooks: wrap any task and report top cumulative functions.

:func:`profile_call` is the generic wrapper the CLI's ``--profile`` flag
uses — it runs a callable (typically a whole sharded command) under
:mod:`cProfile` and renders the hottest functions by cumulative time.
:func:`profiled` wraps a shard worker function so individual shards can
be profiled through :func:`repro.engine.executor.run_sharded` without
changing the executor.

Profiling is strictly observational: the wrapped callable's return value
passes through untouched, so profiled runs keep producing byte-identical
experiment outputs (only slower).
"""

from __future__ import annotations

import cProfile
import functools
import io
import pstats
from typing import Any, Callable, Tuple

#: Rows shown in a rendered profile report.
DEFAULT_TOP = 25


def render_stats(profile: cProfile.Profile, top: int = DEFAULT_TOP,
                 title: str = "profile") -> str:
    """Top-``top`` functions by cumulative time, as an aligned report."""
    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    stats.print_stats(top)
    body = buffer.getvalue().strip()
    header = f"[profile] {title} — top {top} by cumulative time"
    return f"{header}\n{body}"


def profile_call(fn: Callable[..., Any], *args: Any, top: int = DEFAULT_TOP,
                 title: str = "profile", **kwargs: Any
                 ) -> Tuple[Any, str]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, report)`` where ``report`` is the rendered
    top-cumulative-functions table.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile.disable()
    return result, render_stats(profile, top=top, title=title)


def profiled(fn: Callable[..., Any], top: int = DEFAULT_TOP,
             sink: Callable[[str], None] = print) -> Callable[..., Any]:
    """Wrap a (shard) function so every call is profiled.

    The wrapper stays picklable as long as ``fn`` and ``sink`` are
    module-level, so it can be handed to ``run_sharded`` in place of the
    raw worker function; each shard's report goes through ``sink``.
    """
    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result, report = profile_call(fn, *args, top=top,
                                      title=getattr(fn, "__name__", "shard"),
                                      **kwargs)
        sink(report)
        return result

    return wrapper
