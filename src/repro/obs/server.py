"""A zero-dependency HTTP scrape endpoint over a :class:`LiveSink`.

:class:`TelemetryServer` wraps ``http.server.ThreadingHTTPServer`` (pure
stdlib, daemon threads) around three read-only routes:

``/metrics``
    The sink's cumulative registry rendered by
    :func:`repro.obs.export.to_prometheus` — the same deterministic
    exposition format ``--metrics-out`` writes, RS100-lintable, with
    ``Content-Type: text/plain; version=0.0.4`` as Prometheus expects.
``/healthz``
    ``ok`` — liveness only, for scrape-loop readiness checks.
``/run``
    The sink's run status as JSON: per-task shard progress, worker
    utilization (busy seconds, RSS, CPU), heartbeat loss accounting and
    the fault/retry counter totals.

The server binds ``127.0.0.1`` by default (telemetry is not an
experiment output and is never exposed beyond the host unless asked)
and accepts port 0 for an ephemeral port — :meth:`TelemetryServer.start`
returns the bound port so callers can print the URL.  Serving runs on a
daemon thread for the duration of the command; scrapes read consistent
snapshots because the sink copies its state under lock.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Type
from urllib.parse import urlsplit

from .export import to_prometheus
from .live import LiveSink

#: The content type Prometheus scrapers expect from a text endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _QuietThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Scrapers reconnect constantly; let restarts rebind immediately.
    allow_reuse_address = True


def _make_handler(sink: LiveSink) -> Type[BaseHTTPRequestHandler]:
    """A request-handler class closed over one sink."""

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            path = urlsplit(self.path).path
            if path == "/metrics":
                body = to_prometheus(sink.registry_snapshot())
                self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                self._reply(200, "text/plain; charset=utf-8", "ok\n")
            elif path in ("/run", "/run/"):
                body = json.dumps(sink.run_status(), sort_keys=True) + "\n"
                self._reply(200, "application/json", body)
            else:
                self._reply(404, "text/plain; charset=utf-8",
                            f"unknown route {path!r}; try /metrics, "
                            f"/healthz or /run\n")

        def _reply(self, status: int, content_type: str,
                   body: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, format: str, *args: Any) -> None:
            """Silence per-request stderr chatter (scrapes are periodic)."""

    return Handler


class TelemetryServer:
    """Serve a sink's telemetry for the duration of a command.

    Usage::

        server = TelemetryServer(sink, port=0)
        port = server.start()        # bound (possibly ephemeral) port
        ...                          # run the experiment
        server.stop()
    """

    def __init__(self, sink: LiveSink, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.sink = sink
        self.host = host
        self.port = port
        self._server: Optional[_QuietThreadingServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._server is not None:
            return self.port
        server = _QuietThreadingServer((self.host, self.port),
                                       _make_handler(self.sink))
        self.port = server.server_address[1]
        self._server = server
        self._thread = threading.Thread(target=server.serve_forever,
                                        name="repro-telemetry",
                                        daemon=True)
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the listener down; idempotent."""
        server = self._server
        thread = self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=2.0)
