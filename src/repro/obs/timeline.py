"""Run timelines: lifecycle events in a ring buffer, exportable two ways.

A :class:`Timeline` records :class:`TimelineEvent` objects — run,
dispatch, shard and worker lifecycle moments fed by the live heartbeat
sink (:mod:`repro.obs.live`) — in a bounded ring buffer, so a very long
run can never grow the parent's memory without bound; overflow is
counted, not silently lost.

Export targets:

* **JSONL** (:func:`write_timeline_jsonl`) — one event per line plus a
  trailing ``timeline_summary`` object, mirroring the span export in
  :mod:`repro.obs.export` so truncated files stay self-describing.
* **Chrome trace-event JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`) — the ``{"traceEvents": [...]}`` format
  that ``chrome://tracing`` and Perfetto (https://ui.perfetto.dev) open
  directly: events with a duration render as complete (``"ph": "X"``)
  slices per worker pid, instants as thread-scoped markers, which gives
  a flamegraph-style view of shard occupancy across workers.

Timestamps are ``time.monotonic()`` seconds (system-wide on Linux, so
parent and worker clocks agree); the Chrome export rebases them to the
earliest event and converts to microseconds as the format requires.
Everything here is out-of-band observability — experiment outputs never
depend on whether a timeline was recorded.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Union

#: Default ring-buffer capacity; at one event per shard boundary this
#: covers runs tens of thousands of shards deep before dropping.
DEFAULT_TIMELINE_CAPACITY = 65536


@dataclass
class TimelineEvent:
    """One lifecycle moment (or slice, when ``dur`` is set).

    ``ts`` is the event's *start* in ``time.monotonic()`` seconds;
    ``dur`` (seconds) turns the event into a slice covering
    ``[ts, ts + dur)``.  ``attrs`` carries free-form context (queue
    depth, payload bytes, record counts) and survives both export
    formats.
    """

    ts: float
    kind: str
    name: str
    pid: int = 0
    shard: Optional[int] = None
    dur: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form; attrs are flattened as ``attr_*`` keys."""
        doc: Dict[str, Any] = {"ts": self.ts, "kind": self.kind,
                               "name": self.name, "pid": self.pid}
        if self.shard is not None:
            doc["shard"] = self.shard
        if self.dur is not None:
            doc["dur"] = self.dur
        for key in sorted(self.attrs):
            doc[f"attr_{key}"] = self.attrs[key]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "TimelineEvent":
        """Inverse of :meth:`as_dict` (round-trips through JSONL)."""
        attrs = {key[len("attr_"):]: value for key, value in doc.items()
                 if key.startswith("attr_")}
        return cls(ts=float(doc["ts"]), kind=str(doc["kind"]),
                   name=str(doc["name"]), pid=int(doc.get("pid", 0)),
                   shard=doc.get("shard"), dur=doc.get("dur"), attrs=attrs)


class Timeline:
    """A bounded event buffer with overflow accounting.

    Appends past ``capacity`` evict the oldest event (ring semantics);
    :attr:`dropped` reports how many were lost so exports can say so.
    """

    def __init__(self, capacity: int = DEFAULT_TIMELINE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("timeline capacity must be >= 1")
        self.capacity = capacity
        self.seen = 0
        self._events: Deque[TimelineEvent] = deque(maxlen=capacity)

    def add(self, event: TimelineEvent) -> None:
        self.seen += 1
        self._events.append(event)

    @property
    def dropped(self) -> int:
        return max(0, self.seen - len(self._events))

    def events(self) -> List[TimelineEvent]:
        """The retained events, oldest first (a copy; safe to hold)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


# ---------------------------------------------------------------------------
# JSONL export (mirrors the span JSONL conventions in obs.export).


def events_to_jsonl(events: Iterable[TimelineEvent]) -> str:
    """One JSON object per event, in the given order."""
    return "".join(json.dumps(event.as_dict(), sort_keys=True) + "\n"
                   for event in events)


def write_timeline_jsonl(events: Sequence[TimelineEvent],
                         path: Union[str, Path],
                         dropped: int = 0) -> Path:
    """Write events as JSONL with a trailing ``timeline_summary`` line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    summary = json.dumps({"event": "timeline_summary",
                          "events": len(events), "dropped": dropped},
                         sort_keys=True)
    path.write_text(events_to_jsonl(events) + summary + "\n")
    return path


def read_timeline_jsonl(path: Union[str, Path]) -> List[TimelineEvent]:
    """Load events back (summary lines excluded)."""
    out: List[TimelineEvent] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("event") == "timeline_summary":
            continue
        out.append(TimelineEvent.from_dict(doc))
    return out


# ---------------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing).


def to_chrome_trace(events: Sequence[TimelineEvent]) -> Dict[str, Any]:
    """Render events as a Chrome trace-event JSON document.

    Slices (events with ``dur``) become complete events (``"ph": "X"``)
    on a per-pid track; instants become thread-scoped markers
    (``"ph": "i"``).  Timestamps rebase to the earliest event and
    convert to microseconds, so the document is valid regardless of the
    monotonic clock's epoch.  Output ordering is deterministic:
    ``(ts, kind, name)``.
    """
    base = min((event.ts for event in events), default=0.0)
    trace_events: List[Dict[str, Any]] = []
    for event in sorted(events, key=lambda e: (e.ts, e.kind, e.name)):
        args: Dict[str, Any] = dict(sorted(event.attrs.items()))
        if event.shard is not None:
            args["shard"] = event.shard
        doc: Dict[str, Any] = {
            "name": event.name or event.kind,
            "cat": event.kind,
            "pid": event.pid,
            "tid": event.pid,
            "ts": round((event.ts - base) * 1e6, 3),
            "args": args,
        }
        if event.dur is not None:
            doc["ph"] = "X"
            doc["dur"] = round(max(0.0, event.dur) * 1e6, 3)
        else:
            doc["ph"] = "i"
            doc["s"] = "t"
        trace_events.append(doc)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Sequence[TimelineEvent],
                       path: Union[str, Path]) -> Path:
    """Write the Chrome trace-event rendering to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(events), sort_keys=True)
                    + "\n")
    return path


def jsonl_to_chrome(src: Union[str, Path], dst: Union[str, Path]) -> int:
    """Convert a timeline JSONL file to Chrome trace format.

    Returns the number of events converted, so callers can report it.
    """
    events = read_timeline_jsonl(src)
    write_chrome_trace(events, dst)
    return len(events)
