"""Lightweight span tracing for query-lifecycle provenance.

A :class:`Tracer` collects :class:`Span` records — named, attributed,
monotonic-clock-timed intervals with parent/child IDs — from anywhere in
the process via a thread of nested ``with tracer.span(...)`` blocks.
Instrumented library code uses the module-level :func:`span` helper,
which no-ops (a shared ``nullcontext``) when no tracer is active, so
tracing that is switched off costs one global load per call site.

Span identity is deterministic: IDs are ``<prefix>-<seq>`` with a
per-tracer sequence, and the shard executor gives each shard's tracer a
``s<shard_index>`` prefix before merging span lists in shard order —
span *topology* is therefore identical for any worker count (only the
wall-clock timestamps vary, and those never feed experiment reports).

The DNS query lifecycle is expressed purely through span nesting and
attributes: a client's ``query`` span parents the resolver's
``cache_lookup`` (attrs: hit), a miss parents ``forward`` and
``authoritative`` spans (attrs: ECS scope in/out, TCP fallback), and
:func:`repro.obs.export.write_spans_jsonl` streams the finished spans as
one JSON object per line.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import (Any, ContextManager, Dict, Iterator, List, Optional,
                    Tuple)

#: Spans kept per tracer before further spans are counted but not stored
#: (a memory backstop for long runs with tracing left on).
DEFAULT_SPAN_LIMIT = 500_000


@dataclass(slots=True)
class Span:
    """One finished (or zero-duration event) span."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "start": self.start, "end": self.end,
                "duration": self.duration, **{f"attr_{k}": v for k, v
                                              in self.attrs.items()}}


class Tracer:
    """Collects spans; nesting is tracked per tracer (single-threaded).

    ``id_prefix`` namespaces span/trace IDs so shard tracers merge
    without collisions.  ``limit`` bounds stored spans; the overflow
    count is reported by :attr:`dropped`.
    """

    def __init__(self, id_prefix: str = "t",
                 limit: int = DEFAULT_SPAN_LIMIT) -> None:
        self.id_prefix = id_prefix
        self.limit = limit
        self.spans: List[Span] = []
        self.dropped = 0
        self._seq = itertools.count(1)
        #: (trace_id, span_id) of the open spans, outermost first.
        self._stack: List[Tuple[str, str]] = []

    # -- ids ----------------------------------------------------------------

    def _next_id(self) -> str:
        return f"{self.id_prefix}-{next(self._seq)}"

    def current(self) -> Optional[Tuple[str, str]]:
        """(trace_id, span_id) of the innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # -- recording ----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span; yields the (mutable) record for extra attrs.

        The record is appended on exit, so ``tracer.spans`` is ordered
        by *completion* — children precede their parents, exactly the
        order a depth-first lifecycle walk finishes in.
        """
        span_id = self._next_id()
        parent = self._stack[-1] if self._stack else None
        trace_id = parent[0] if parent else span_id
        record = Span(trace_id, span_id, parent[1] if parent else None,
                      name, time.monotonic(), 0.0, attrs)
        self._stack.append((trace_id, span_id))
        try:
            yield record
        finally:
            self._stack.pop()
            record.end = time.monotonic()
            self._store(record)

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration span under the current parent."""
        span_id = self._next_id()
        parent = self._stack[-1] if self._stack else None
        now = time.monotonic()
        record = Span(parent[0] if parent else span_id, span_id,
                      parent[1] if parent else None, name, now, now, attrs)
        self._store(record)
        return record

    def _store(self, record: Span) -> None:
        if len(self.spans) < self.limit:
            self.spans.append(record)
        else:
            self.dropped += 1

    # -- merging ------------------------------------------------------------

    def absorb(self, spans: List[Span], dropped: int = 0) -> None:
        """Append shard spans (already uniquely prefixed) in order."""
        room = self.limit - len(self.spans)
        if room >= len(spans):
            self.spans.extend(spans)
        else:
            self.spans.extend(spans[:max(0, room)])
            self.dropped += len(spans) - max(0, room)
        self.dropped += dropped

    # -- queries (for tests and analysis) -----------------------------------

    def by_trace(self) -> Dict[str, List[Span]]:
        out: Dict[str, List[Span]] = {}
        for record in self.spans:
            out.setdefault(record.trace_id, []).append(record)
        return out

    def children_of(self, span_id: str) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]


# ---------------------------------------------------------------------------
# activation: the process-wide current tracer

#: The active tracer, or ``None`` when tracing is disabled.  Hot-path
#: guards read this slot directly (``trace.ACTIVE is not None``).
ACTIVE: Optional[Tracer] = None

_NULL: ContextManager[None] = nullcontext(None)


def active() -> Optional[Tracer]:
    """The tracer instrumented code should write to (``None`` = off)."""
    return ACTIVE


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the active tracer."""
    global ACTIVE
    ACTIVE = tracer if tracer is not None else Tracer()
    return ACTIVE


def deactivate() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


def swap(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` (possibly ``None``), returning the previous one."""
    global ACTIVE
    previous, ACTIVE = ACTIVE, tracer
    return previous


def span(name: str, **attrs: Any) -> ContextManager[Optional[Span]]:
    """Open a span on the active tracer; a no-op context when disabled."""
    tracer = ACTIVE
    if tracer is None:
        return _NULL
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> Optional[Span]:
    """Record a zero-duration span on the active tracer, if any."""
    tracer = ACTIVE
    if tracer is None:
        return None
    return tracer.event(name, **attrs)
