"""Live telemetry: streaming heartbeats from workers to a parent sink.

The post-hoc obs layer (:mod:`repro.obs.metrics` / ``trace``) only
materializes after :class:`~repro.engine.executor.EngineReport` merges
shards, so a long run is a black box until it finishes.  This module
adds the *live plane*: instrumented engine code emits sequence-numbered
:class:`Heartbeat` messages — run/dispatch/shard lifecycle moments plus
per-worker rusage samples — through the process-wide :data:`ACTIVE`
emitter slot, and a parent-side :class:`LiveSink` folds them into a
scrapeable registry (served by :mod:`repro.obs.server`), a run-status
snapshot, and a :class:`~repro.obs.timeline.Timeline`.

Transport follows the worker topology:

* in the parent (and for inline ``workers=1`` runs) the slot holds a
  :class:`SinkEmitter` that feeds the sink directly;
* pool workers get a :class:`QueueEmitter` writing to a
  ``multiprocessing`` queue.  :func:`pool_initializer` hands
  :class:`~repro.engine.pool.WorkerPool` the initializer that installs
  it, and the sink drains the queue on a daemon thread.

The protocol is **loss-tolerant by design**: emitters never block
(``put_nowait``; a full or closed channel drops the beat), every beat
carries a per-emitter sequence number, and the sink counts gaps and
stale deliveries instead of trusting transport.  It is also strictly
**out-of-band**: heartbeats ride a side channel, never the result path,
so experiment outputs stay byte-identical at any ``--workers`` with the
live plane on or off.  Shard-end beats may attach the shard's own
:class:`~repro.obs.metrics.MetricsRegistry`; because each shard registry
is merged exactly once, every counter the sink serves is monotonically
non-decreasing across scrapes.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple)

from .metrics import Counter, MetricsRegistry
from .timeline import Timeline, TimelineEvent

if TYPE_CHECKING:
    from multiprocessing.queues import Queue as _MpQueue

    #: The cross-process heartbeat channel.
    BeatChannel = _MpQueue[  # pragma: no cover - typing only
        "Heartbeat"]

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None  # type: ignore[assignment]


def _rusage() -> Tuple[int, float]:
    """(max RSS in KiB, user+system CPU seconds) for this process."""
    if _resource is None:
        return 0, 0.0
    usage = _resource.getrusage(_resource.RUSAGE_SELF)
    return int(usage.ru_maxrss), float(usage.ru_utime + usage.ru_stime)


#: Counter-name prefixes surfaced in the ``/run`` status document.
_STATUS_COUNTER_PREFIXES = ("repro_faults_", "repro_retries_",
                            "repro_ecs_downgrades_")


@dataclass
class Heartbeat:
    """One telemetry message from an emitter to the sink.

    ``seq`` increments per emitter (so per process), letting the sink
    detect loss and discard stale redeliveries; ``ts`` is
    ``time.monotonic()`` (system-wide on Linux, comparable across the
    pool).  All fields are picklable — beats cross the pool boundary as
    plain queue items.
    """

    seq: int
    pid: int
    ts: float
    kind: str
    task: str = ""
    shard: Optional[int] = None
    records: int = 0
    seconds: float = 0.0
    payload_bytes: int = 0
    queue_depth: int = 0
    shards: int = 0
    rss_kb: int = 0
    cpu_seconds: float = 0.0
    metrics: Optional[MetricsRegistry] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class LiveEmitter:
    """Builds sequence-numbered heartbeats; subclasses deliver them.

    The convenience methods (:meth:`run_start` … :meth:`event`) are the
    vocabulary instrumented code speaks; delivery (and loss) policy
    lives entirely in the subclass :meth:`emit`.
    """

    def __init__(self) -> None:
        self._seq = 0
        self._pid = os.getpid()

    # -- delivery (subclass responsibility) ---------------------------------

    def emit(self, beat: Heartbeat) -> None:
        raise NotImplementedError

    def worker_channel(self) -> Optional["BeatChannel"]:
        """The queue pool workers should emit into (``None`` = no pool)."""
        return None

    # -- beat construction --------------------------------------------------

    def _beat(self, kind: str, *, task: str = "",
              shard: Optional[int] = None, records: int = 0,
              seconds: float = 0.0, payload_bytes: int = 0,
              queue_depth: int = 0, shards: int = 0,
              metrics: Optional[MetricsRegistry] = None,
              attrs: Optional[Dict[str, Any]] = None) -> Heartbeat:
        self._seq += 1
        rss_kb, cpu_seconds = _rusage()
        return Heartbeat(seq=self._seq, pid=self._pid, ts=time.monotonic(),
                         kind=kind, task=task, shard=shard, records=records,
                         seconds=seconds, payload_bytes=payload_bytes,
                         queue_depth=queue_depth, shards=shards,
                         rss_kb=rss_kb, cpu_seconds=cpu_seconds,
                         metrics=metrics, attrs=attrs or {})

    # -- instrumentation vocabulary -----------------------------------------

    def run_start(self, task: str, shards: int) -> None:
        self.emit(self._beat("run_start", task=task, shards=shards))

    def run_end(self, task: str, records: int) -> None:
        self.emit(self._beat("run_end", task=task, records=records))

    def dispatch(self, task: str, shard: int, shards: int,
                 payload_bytes: int, queue_depth: int) -> None:
        """One chunk submission: ``shard`` is the chunk's first index."""
        self.emit(self._beat("dispatch", task=task, shard=shard,
                             shards=shards, payload_bytes=payload_bytes,
                             queue_depth=queue_depth))

    def shard_start(self, task: str, shard: int) -> None:
        self.emit(self._beat("shard_start", task=task, shard=shard))

    def shard_end(self, task: str, shard: int, records: int,
                  seconds: float,
                  metrics: Optional[MetricsRegistry] = None) -> None:
        self.emit(self._beat("shard_end", task=task, shard=shard,
                             records=records, seconds=seconds,
                             metrics=metrics))

    def progress(self, task: str, shard: Optional[int],
                 records: int) -> None:
        """A mid-shard tick for long shards (chaos scans, big merges)."""
        self.emit(self._beat("progress", task=task, shard=shard,
                             records=records))

    def event(self, kind: str, task: str = "",
              shard: Optional[int] = None, records: int = 0,
              seconds: float = 0.0, **attrs: Any) -> None:
        """A free-form lifecycle moment (``seconds > 0`` makes a slice)."""
        self.emit(self._beat(kind, task=task, shard=shard, records=records,
                             seconds=seconds, attrs=dict(attrs)))


class SinkEmitter(LiveEmitter):
    """Parent-side emitter: beats go straight into the sink."""

    def __init__(self, sink: "LiveSink") -> None:
        super().__init__()
        self.sink = sink

    def emit(self, beat: Heartbeat) -> None:
        self.sink.offer(beat)

    def worker_channel(self) -> Optional["BeatChannel"]:
        return self.sink.worker_channel()


class QueueEmitter(LiveEmitter):
    """Worker-side emitter: non-blocking sends into the pool channel.

    A full or torn-down channel silently drops the beat — the sequence
    number still advanced, so the sink's loss counter records the gap.
    Telemetry must never block or fail a shard.
    """

    def __init__(self, channel: "BeatChannel") -> None:
        super().__init__()
        self._channel = channel

    def emit(self, beat: Heartbeat) -> None:
        try:
            self._channel.put_nowait(beat)
        except (queue_mod.Full, ValueError, OSError):
            pass


@dataclass
class WorkerStatus:
    """Per-process view the sink maintains from heartbeats."""

    pid: int
    beats: int = 0
    busy_seconds: float = 0.0
    rss_kb: int = 0
    cpu_seconds: float = 0.0
    last_seq: int = 0


@dataclass
class TaskStatus:
    """Per-task shard progress ledger."""

    task: str
    shards_total: int = 0
    dispatched: int = 0
    started: int = 0
    done: int = 0
    records: int = 0
    payload_bytes: int = 0


#: Signature of the optional per-beat callback (the ``--live`` printer).
OnBeat = Callable[["LiveSink", Heartbeat], None]


class LiveSink:
    """Folds heartbeats into scrapeable state (thread-safe).

    Owns three views of the run: a cumulative
    :class:`~repro.obs.metrics.MetricsRegistry` (``repro_live_*``
    instruments plus every shard registry attached to a ``shard_end``
    beat), a JSON-friendly run status (shard progress per task, worker
    utilization, loss accounting), and a bounded
    :class:`~repro.obs.timeline.Timeline`.  All three are read by
    :class:`~repro.obs.server.TelemetryServer` under the sink's lock,
    so scrapes are consistent snapshots.
    """

    def __init__(self, timeline_capacity: int = 65536,
                 on_beat: Optional[OnBeat] = None) -> None:
        self._lock = threading.Lock()
        self._registry = MetricsRegistry()
        self.timeline = Timeline(capacity=timeline_capacity)
        self.on_beat = on_beat
        self.started = time.monotonic()
        self.heartbeats = 0
        self.lost = 0
        self.stale = 0
        self._workers: Dict[int, WorkerStatus] = {}
        self._tasks: Dict[str, TaskStatus] = {}
        self._channel: Optional["BeatChannel"] = None
        self._drain: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- ingestion ----------------------------------------------------------

    def offer(self, beat: Heartbeat) -> None:
        """Fold one heartbeat in; stale (re-)deliveries are ignored."""
        callback: Optional[OnBeat] = None
        with self._lock:
            self.heartbeats += 1
            worker = self._workers.get(beat.pid)
            if worker is None:
                worker = WorkerStatus(pid=beat.pid)
                self._workers[beat.pid] = worker
            if beat.seq <= worker.last_seq:
                self.stale += 1
                return
            lost_now = beat.seq - worker.last_seq - 1
            worker.last_seq = beat.seq
            self.lost += lost_now
            worker.beats += 1
            worker.rss_kb = max(worker.rss_kb, beat.rss_kb)
            worker.cpu_seconds = max(worker.cpu_seconds, beat.cpu_seconds)
            self._absorb(beat, worker, lost_now)
            callback = self.on_beat
        if callback is not None:
            callback(self, beat)

    def _absorb(self, beat: Heartbeat, worker: WorkerStatus,
                lost_now: int) -> None:
        """Update registry, task ledger and timeline (lock held)."""
        reg = self._registry
        reg.counter("repro_live_heartbeats_total",
                    "Live-plane heartbeats received, by beat kind.",
                    ("kind",)).inc(1.0, beat.kind)
        if lost_now:
            reg.counter("repro_live_heartbeats_lost_total",
                        "Heartbeats dropped in transit (sequence gaps)."
                        ).inc(float(lost_now))
        task = self._task(beat.task) if beat.task else None
        kind = beat.kind
        if kind == "run_start" and task is not None:
            task.shards_total += beat.shards
            reg.counter("repro_live_runs_total",
                        "Sharded runs started, per task.",
                        ("task",)).inc(1.0, beat.task)
        elif kind == "dispatch" and task is not None:
            task.dispatched += beat.shards
            task.payload_bytes += beat.payload_bytes
            reg.counter("repro_live_payload_bytes_total",
                        "Serialized shard-spec bytes dispatched, per task.",
                        ("task",)).inc(float(beat.payload_bytes), beat.task)
            reg.gauge("repro_live_queue_depth",
                      "Chunk submissions still queued behind this one.",
                      mode="max").set(float(beat.queue_depth))
        elif kind == "shard_start" and task is not None:
            task.started += 1
        elif kind == "shard_end" and task is not None:
            task.done += 1
            task.records += beat.records
            worker.busy_seconds += beat.seconds
            reg.counter("repro_live_shards_done_total",
                        "Shards completed, per task.",
                        ("task",)).inc(1.0, beat.task)
            reg.counter("repro_live_records_total",
                        "Records processed by completed shards, per task.",
                        ("task",)).inc(float(beat.records), beat.task)
            if beat.metrics is not None:
                reg.merge_from(beat.metrics)
        if task is not None:
            reg.gauge("repro_live_shards_in_flight",
                      "Shards started but not yet finished, per task.",
                      ("task",), mode="max").set(
                          float(max(0, task.started - task.done)), beat.task)
        if beat.rss_kb:
            reg.gauge("repro_live_worker_rss_kb",
                      "Peak resident set size per worker process (KiB).",
                      ("pid",), mode="max").set(float(worker.rss_kb),
                                                str(beat.pid))
        if beat.cpu_seconds:
            reg.gauge("repro_live_worker_cpu_seconds",
                      "User+system CPU time per worker process.",
                      ("pid",), mode="max").set(worker.cpu_seconds,
                                                str(beat.pid))
        self.timeline.add(self._timeline_event(beat))

    def _task(self, name: str) -> TaskStatus:
        task = self._tasks.get(name)
        if task is None:
            task = TaskStatus(task=name)
            self._tasks[name] = task
        return task

    @staticmethod
    def _timeline_event(beat: Heartbeat) -> TimelineEvent:
        name = beat.task or beat.kind
        if beat.shard is not None:
            name = f"{name}[{beat.shard}]"
        attrs: Dict[str, Any] = {}
        if beat.records:
            attrs["records"] = beat.records
        if beat.payload_bytes:
            attrs["payload_bytes"] = beat.payload_bytes
        if beat.queue_depth:
            attrs["queue_depth"] = beat.queue_depth
        if beat.shards:
            attrs["shards"] = beat.shards
        attrs.update(beat.attrs)
        has_span = beat.seconds > 0
        return TimelineEvent(
            ts=beat.ts - beat.seconds if has_span else beat.ts,
            kind=beat.kind, name=name, pid=beat.pid, shard=beat.shard,
            dur=beat.seconds if has_span else None, attrs=attrs)

    # -- snapshots (what the HTTP server reads) -----------------------------

    def registry_snapshot(self) -> MetricsRegistry:
        """A consistent copy of the cumulative registry, plus uptime."""
        with self._lock:
            snapshot = MetricsRegistry().merge_from(self._registry)
        snapshot.gauge("repro_live_uptime_seconds",
                       "Seconds since the sink started.", mode="max").set(
                           time.monotonic() - self.started)
        return snapshot

    def run_status(self) -> Dict[str, Any]:
        """JSON-friendly run snapshot for the ``/run`` route."""
        with self._lock:
            tasks = {
                name: {"shards_total": t.shards_total,
                       "dispatched": t.dispatched,
                       "started": t.started, "done": t.done,
                       "in_flight": max(0, t.started - t.done),
                       "records": t.records,
                       "payload_bytes": t.payload_bytes}
                for name, t in sorted(self._tasks.items())}
            workers = {
                str(pid): {"beats": w.beats,
                           "busy_seconds": round(w.busy_seconds, 6),
                           "rss_kb": w.rss_kb,
                           "cpu_seconds": round(w.cpu_seconds, 6)}
                for pid, w in sorted(self._workers.items())}
            counters: Dict[str, float] = {}
            for instrument in self._registry.instruments():
                if isinstance(instrument, Counter) and \
                        instrument.name.startswith(_STATUS_COUNTER_PREFIXES):
                    counters[instrument.name] = \
                        sum(instrument.samples().values())
            return {
                "uptime_seconds": round(time.monotonic() - self.started, 3),
                "heartbeats": {"received": self.heartbeats,
                               "lost": self.lost, "stale": self.stale},
                "tasks": tasks,
                "workers": workers,
                "counters": counters,
                "timeline": {"events": len(self.timeline),
                             "dropped": self.timeline.dropped},
            }

    # -- the pool side channel ----------------------------------------------

    def worker_channel(self) -> "BeatChannel":
        """The queue workers emit into; created (with its drain thread)
        on first use, so runs without a pool never pay for it."""
        with self._lock:
            if self._channel is None:
                self._channel = multiprocessing.get_context().Queue()
                self._drain = threading.Thread(
                    target=self._drain_loop, name="repro-live-drain",
                    daemon=True)
                self._drain.start()
            return self._channel

    def _drain_loop(self) -> None:
        while not self._stop.is_set():
            channel = self._channel
            if channel is None:  # pragma: no cover - close() raced us
                return
            try:
                beat = channel.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            except (EOFError, OSError):  # pragma: no cover - torn down
                return
            self.offer(beat)

    def close(self) -> None:
        """Stop the drain thread and fold any residual queued beats.

        Call after the worker pool has shut down; beats still in the
        channel at that point are drained synchronously so short runs
        lose nothing.  Idempotent.
        """
        self._stop.set()
        drain = self._drain
        if drain is not None:
            drain.join(timeout=2.0)
        channel = self._channel
        self._channel = None
        self._drain = None
        if channel is not None:
            # A multiprocessing queue feeds through a background thread
            # and a pipe, so just-put beats can be transiently invisible
            # to a zero-timeout get; a short timeout closes that window.
            while True:
                try:
                    beat = channel.get(timeout=0.2)
                except (queue_mod.Empty, EOFError, OSError):
                    break
                self.offer(beat)
            channel.close()


# ---------------------------------------------------------------------------
# activation: the process-wide current emitter (mirrors metrics/trace).

#: The active live emitter, or ``None`` when the live plane is off.
#: Instrumented code guards every read (``x = live.ACTIVE; if x is not
#: None: ...``) — RS003 enforces the idiom, exactly as for metrics.
ACTIVE: Optional[LiveEmitter] = None


def active() -> Optional[LiveEmitter]:
    """The emitter instrumented code should use (``None`` = off)."""
    return ACTIVE


def activate(emitter: Optional[LiveEmitter]) -> Optional[LiveEmitter]:
    """Install ``emitter`` as the active one; returns the previous one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = emitter
    return previous


def deactivate() -> Optional[LiveEmitter]:
    """Disable the live plane; returns the emitter that was active."""
    return activate(None)


def swap(emitter: Optional[LiveEmitter]) -> Optional[LiveEmitter]:
    """Alias of :func:`activate`, matching the metrics/trace module API."""
    return activate(emitter)


# ---------------------------------------------------------------------------
# pool wiring: how WorkerPool arranges for workers to emit.


def _install_queue_emitter(channel: "BeatChannel") -> None:
    """Pool-initializer body: runs once in each fresh worker process.

    Replaces whatever emitter the worker inherited (under ``fork`` that
    is the parent's :class:`SinkEmitter`, whose sink copy would be
    written blindly) with a :class:`QueueEmitter` on the shared channel.
    """
    activate(QueueEmitter(channel))


def pool_initializer(
) -> Optional[Tuple[Callable[["BeatChannel"], None],
                    Tuple["BeatChannel", ...]]]:
    """The ``(initializer, initargs)`` a worker pool should install.

    ``None`` when the live plane is inactive (or the active emitter has
    no sink behind it), so pools created outside a live session carry
    zero telemetry plumbing.  The channel rides ``initargs`` — inherited
    under ``fork``, pickled into the spawning context under ``spawn``.
    """
    emitter = ACTIVE
    if emitter is None:
        return None
    channel = emitter.worker_channel()
    if channel is None:
        return None
    return _install_queue_emitter, (channel,)
