"""``repro.obs`` — query-lifecycle tracing and metrics (zero-dependency).

The observability layer is strictly out-of-band, like
:class:`~repro.engine.executor.ShardStats`: experiment outputs are
byte-identical whether it is enabled or not, and a disabled registry or
tracer costs one global load per instrumented call site.  Three parts:

- :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry`
  of named :class:`Counter`/:class:`Gauge`/:class:`Histogram`
  instruments with label support, mergeable across engine shards
  exactly like ``ReplayPartial``.
- :mod:`repro.obs.trace` — lightweight span tracing (``span("resolve",
  qname=...)``, monotonic-clock timing, parent/child span IDs) forming
  per-query DNS lifecycle traces.
- :mod:`repro.obs.export` / :mod:`repro.obs.profile` — Prometheus text
  and JSONL span export, plus a cProfile hook for whole commands or
  individual shards.
- :mod:`repro.obs.live` / :mod:`repro.obs.server` /
  :mod:`repro.obs.timeline` — the live plane: loss-tolerant heartbeat
  streaming from pool workers into a :class:`LiveSink`, a stdlib HTTP
  scrape endpoint (``/metrics``, ``/healthz``, ``/run``), and run
  timelines exportable as JSONL or Chrome trace-event JSON.

See ``docs/observability.md`` for the instrument catalogue, the live
plane's heartbeat protocol and how to read a query trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from . import metrics as _metrics
from . import trace as _trace
from .export import (parse_prometheus, read_spans_jsonl, spans_to_jsonl,
                     to_prometheus, write_prometheus, write_spans_jsonl)
from .live import (Heartbeat, LiveEmitter, LiveSink, QueueEmitter,
                   SinkEmitter)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      merge_registries)
from .profile import profile_call, profiled, render_stats
from .server import TelemetryServer
from .timeline import (Timeline, TimelineEvent, events_to_jsonl,
                       jsonl_to_chrome, read_timeline_jsonl,
                       to_chrome_trace, write_chrome_trace,
                       write_timeline_jsonl)
from .trace import Span, Tracer, event, span

__all__ = [
    "Counter", "Gauge", "Heartbeat", "Histogram", "LiveEmitter",
    "LiveSink", "MetricsRegistry", "ObsSession", "QueueEmitter",
    "SinkEmitter", "Span", "TelemetryServer", "Timeline",
    "TimelineEvent", "Tracer", "active_registry", "active_tracer",
    "event", "events_to_jsonl", "jsonl_to_chrome", "merge_registries",
    "observe", "parse_prometheus", "profile_call", "profiled",
    "read_spans_jsonl", "read_timeline_jsonl", "render_stats", "span",
    "spans_to_jsonl", "to_chrome_trace", "to_prometheus",
    "write_chrome_trace", "write_prometheus", "write_spans_jsonl",
    "write_timeline_jsonl",
]


def active_registry() -> Optional[MetricsRegistry]:
    """The process's active metrics registry, or ``None`` when disabled."""
    return _metrics.ACTIVE


def active_tracer() -> Optional[Tracer]:
    """The process's active tracer, or ``None`` when disabled."""
    return _trace.ACTIVE


class ObsSession:
    """One activation of metrics and/or tracing (see :func:`observe`)."""

    def __init__(self, registry: Optional[MetricsRegistry],
                 tracer: Optional[Tracer]) -> None:
        self.registry = registry
        self.tracer = tracer


@contextmanager
def observe(metrics: bool = True, tracing: bool = False,
            span_limit: int = _trace.DEFAULT_SPAN_LIMIT
            ) -> Iterator[ObsSession]:
    """Enable collection for a block; restores the previous state after.

    The yielded :class:`ObsSession` keeps the registry/tracer so callers
    can export after the block exits::

        with observe(metrics=True, tracing=True) as session:
            run_experiment()
        write_prometheus(session.registry, "metrics.prom")
        write_spans_jsonl(session.tracer.spans, "trace.jsonl")
    """
    registry = MetricsRegistry() if metrics else None
    tracer = Tracer(limit=span_limit) if tracing else None
    previous_registry = _metrics.swap(registry) if metrics else None
    previous_tracer = _trace.swap(tracer) if tracing else None
    try:
        yield ObsSession(registry, tracer)
    finally:
        if metrics:
            _metrics.swap(previous_registry)
        if tracing:
            _trace.swap(previous_tracer)
