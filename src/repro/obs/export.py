"""Exporters: Prometheus text format and JSONL event streams.

:func:`to_prometheus` renders a :class:`~repro.obs.metrics.MetricsRegistry`
in the Prometheus text exposition format (``# HELP``/``# TYPE`` headers,
escaped label values, cumulative histogram buckets with ``+Inf`` and
``_sum``/``_count`` series).  Output is fully deterministic: metric
names, label names and label values are emitted in sorted order, so two
registries with equal samples render byte-identically regardless of
insertion order — which is what lets ``--workers 1`` and ``--workers N``
runs produce the same metrics file.

:func:`parse_prometheus` is the matching validator: a small strict
parser used by ``tools/lint_prometheus.py`` and the test suite to assert
that everything we emit is well-formed.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\"", r"\"")
            .replace("\n", r"\n"))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels(names: Sequence[str], values: Sequence[str],
            extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(zip(names, (str(v) for v in values))) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in sorted(pairs))
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        labelnames = instrument.labelnames
        if isinstance(instrument, (Counter, Gauge)):
            for key in sorted(instrument.samples()):
                lines.append(f"{name}{_labels(labelnames, key)} "
                             f"{_format_value(instrument.samples()[key])}")
        elif isinstance(instrument, Histogram):
            for key in sorted(instrument.samples()):
                counts, total, count = instrument.samples()[key]
                cumulative = 0
                for bound, bucket in zip(instrument.buckets, counts):
                    cumulative += bucket
                    le = (("le", _format_value(float(bound))),)
                    lines.append(
                        f"{name}_bucket{_labels(labelnames, key, le)} "
                        f"{cumulative}")
                cumulative += counts[-1]
                lines.append(f"{name}_bucket"
                             f"{_labels(labelnames, key, (('le', '+Inf'),))} "
                             f"{cumulative}")
                lines.append(f"{name}_sum{_labels(labelnames, key)} "
                             f"{_format_value(total)}")
                lines.append(f"{name}_count{_labels(labelnames, key)} "
                             f"{count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry,
                     path: Union[str, Path]) -> Path:
    """Write the Prometheus rendering to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_prometheus(registry))
    return path


# ---------------------------------------------------------------------------
# Prometheus text-format validation (the linter's engine)


def _parse_labels(body: str, lineno: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq].strip()
        if not name.replace("_", "a").isalnum():
            raise ValueError(f"line {lineno}: bad label name {name!r}")
        if body[eq + 1] != '"':
            raise ValueError(f"line {lineno}: unquoted label value")
        j = eq + 2
        value_chars: List[str] = []
        while j < len(body):
            ch = body[j]
            if ch == "\\":
                value_chars.append(body[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            j += 1
        else:
            raise ValueError(f"line {lineno}: unterminated label value")
        labels[name] = "".join(value_chars)
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return labels


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse Prometheus text format; raises ``ValueError``.

    Returns ``{metric_family: {"type": ..., "help": ..., "samples":
    [(name, labels, value), ...]}}``.  Validation covers: every sample
    belongs to a declared family, ``TYPE`` precedes samples and is
    declared at most once per family (a duplicate means two scrape
    bodies were concatenated), histogram families expose
    ``_bucket``/``_sum``/``_count`` series, bucket counts are
    cumulative, and values parse as numbers.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None,
                                       "samples": []})["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            family_info = families.setdefault(
                name, {"type": None, "help": None, "samples": []})
            if family_info["type"] is not None:
                # A family declared twice is the signature of two scrape
                # bodies concatenated together — reject it loudly rather
                # than silently merging inconsistent series.
                raise ValueError(f"line {lineno}: duplicate # TYPE for "
                                 f"{name!r}")
            family_info["type"] = kind
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[:line.index("{")]
            body = line[line.index("{") + 1:line.rindex("}")]
            labels = _parse_labels(body, lineno)
            value_text = line[line.rindex("}") + 1:].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                family = name[:-len(suffix)]
                break
        if family not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no "
                             f"# TYPE declaration")
        if family != name and families[family]["type"] != "histogram":
            raise ValueError(f"line {lineno}: suffixed sample {name!r} on "
                             f"non-histogram family {family!r}")
        if value_text == "+Inf":
            value = math.inf
        else:
            try:
                value = float(value_text)
            except ValueError:
                raise ValueError(f"line {lineno}: bad sample value "
                                 f"{value_text!r}") from None
        families[family]["samples"].append((name, labels, value))

    for family, info in families.items():
        if info["type"] is None:
            raise ValueError(f"family {family!r} has samples but no # TYPE")
        if info["type"] == "histogram":
            _check_histogram_family(family, info["samples"])
    return families


LabelPairs = Tuple[Tuple[str, str], ...]


def _check_histogram_family(
        family: str,
        samples: List[Tuple[str, Dict[str, str], float]]) -> None:
    by_labels: Dict[LabelPairs, List[Tuple[float, float]]] = {}
    seen_sum: Set[LabelPairs] = set()
    seen_count: Set[LabelPairs] = set()
    for name, labels, value in samples:
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        if name == f"{family}_bucket":
            if "le" not in labels:
                raise ValueError(f"{family}: bucket sample without le label")
            le = math.inf if labels["le"] == "+Inf" else float(labels["le"])
            by_labels.setdefault(key, []).append((le, value))
        elif name == f"{family}_sum":
            seen_sum.add(key)
        elif name == f"{family}_count":
            seen_count.add(key)
    for key, buckets in by_labels.items():
        buckets.sort()
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"{family}: missing +Inf bucket for {key}")
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            raise ValueError(f"{family}: non-cumulative buckets for {key}")
        if key not in seen_sum or key not in seen_count:
            raise ValueError(f"{family}: missing _sum/_count for {key}")


# ---------------------------------------------------------------------------
# JSONL event streams


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per span, in the given (completion) order."""
    return "".join(json.dumps(span.as_dict(), sort_keys=True) + "\n"
                   for span in spans)


def write_spans_jsonl(spans: Sequence[Span], path: Union[str, Path],
                      dropped: int = 0) -> Path:
    """Write spans as JSONL, with a trailing summary object.

    The summary line (``{"event": "tracer_summary", ...}``) records the
    span and overflow counts so a truncated trace is self-describing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    summary = json.dumps({"event": "tracer_summary", "spans": len(spans),
                          "dropped": dropped}, sort_keys=True)
    path.write_text(spans_to_jsonl(spans) + summary + "\n")
    return path


def read_spans_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load span dicts back (summary lines excluded)."""
    out: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        doc = json.loads(line)
        if doc.get("event") == "tracer_summary":
            continue
        out.append(doc)
    return out
