"""Process-local metrics: named counters, gauges and histograms.

The registry is the metrics analogue of
:class:`~repro.analysis.cache_sim.ReplayPartial`: every instrument's
state is a plain mapping of label tuples to numbers whose merge is
field-wise addition (or max, for high-watermark gauges), so per-shard
registries combine associatively, commutatively and with an all-zero
identity — shard order, completion order and worker count can never
change the merged totals.  The algebra is pinned by
``tests/test_obs.py`` exactly like the ``ReplayPartial`` algebra is
pinned by ``tests/test_engine_merge.py``.

Activation is explicit and out-of-band: instrumented code reads the
module-level :data:`ACTIVE` slot and does nothing when it is ``None``
(one global load and an ``is not None`` test), so a disabled registry
costs effectively zero on hot paths and experiment outputs are
byte-identical with metrics on or off.  Everything here is stdlib-only
and picklable, so shard registries cross process-pool boundaries as
ordinary return values.
"""

from __future__ import annotations

import bisect
from typing import (Any, Dict, Iterable, List, Optional, Sequence, Tuple,
                    Type, TypeVar, Union)

LabelKey = Tuple[str, ...]

#: One histogram label-state: ``[bucket_counts, sum, count]``.  A plain
#: mutable list (not a dataclass) so states pickle small and merge fast;
#: the heterogeneous slots force ``Any`` element typing.
HistogramState = List[Any]

#: Default histogram buckets (upper bounds, ms-friendly); ``+Inf`` is
#: implicit — the per-label state keeps one overflow slot past the list.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0)


class Counter:
    """A monotonically increasing sum, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, *labelvalues: str) -> None:
        """Add ``amount`` under the given label values (positional)."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = labelvalues
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, *labelvalues: str) -> float:
        return self._values.get(labelvalues, 0.0)

    def samples(self) -> Dict[LabelKey, float]:
        """Label tuple -> value (a live view; copy before mutating)."""
        return self._values

    # name/help/labelnames are identity, not state: merge_from is only
    # reached for instruments the registry already matched by identity.
    def merge_from(self, other: "Counter") -> None:  # repro-lint: disable=RS002
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class Gauge:
    """A point-in-time value with a declared shard-merge mode.

    ``mode="sum"`` suits quantities that partition across shards
    (disjoint shard caches sum into the aggregate occupancy, exactly as
    ``ReplayPartial`` peak sizes do); ``mode="max"`` suits global high
    watermarks.  Both merges are associative and commutative with
    identity 0 for the non-negative values tracked here.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (), mode: str = "sum") -> None:
        if mode not in ("sum", "max"):
            raise ValueError(f"unknown gauge merge mode {mode!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.mode = mode
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, *labelvalues: str) -> None:
        self._values[labelvalues] = float(value)

    def set_max(self, value: float, *labelvalues: str) -> None:
        """Raise the gauge to ``value`` if it is higher (high watermark)."""
        key = labelvalues
        current = self._values.get(key)
        if current is None or value > current:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, *labelvalues: str) -> None:
        key = labelvalues
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, *labelvalues: str) -> None:
        self.inc(-amount, *labelvalues)

    def value(self, *labelvalues: str) -> float:
        return self._values.get(labelvalues, 0.0)

    def samples(self) -> Dict[LabelKey, float]:
        return self._values

    # name/help/labelnames are identity, not state (see Counter.merge_from).
    def merge_from(self, other: "Gauge") -> None:  # repro-lint: disable=RS002
        for key, value in other._values.items():
            current = self._values.get(key)
            if current is None:
                self._values[key] = value
            elif self.mode == "sum":
                self._values[key] = current + value
            else:
                self._values[key] = max(current, value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Per label tuple the state is ``(bucket_counts, sum, count)`` where
    ``bucket_counts`` has one slot per declared upper bound plus the
    implicit ``+Inf`` overflow slot.  Merging adds everything
    element-wise, which requires both sides to declare identical
    buckets.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self._states: Dict[LabelKey, HistogramState] = {}

    def _state(self, key: LabelKey) -> HistogramState:
        state = self._states.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self._states[key] = state
        return state

    def observe(self, value: float, *labelvalues: str) -> None:
        state = self._state(labelvalues)
        state[0][bisect.bisect_left(self.buckets, value)] += 1
        state[1] += value
        state[2] += 1

    def count(self, *labelvalues: str) -> int:
        state = self._states.get(labelvalues)
        return int(state[2]) if state else 0

    def sum(self, *labelvalues: str) -> float:
        state = self._states.get(labelvalues)
        return float(state[1]) if state else 0.0

    def bucket_counts(self, *labelvalues: str) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow slot last."""
        state = self._states.get(labelvalues)
        return list(state[0]) if state else [0] * (len(self.buckets) + 1)

    def samples(self) -> Dict[LabelKey, HistogramState]:
        return self._states

    # help/labelnames are identity, not state (see Counter.merge_from);
    # buckets ARE state-bearing and are checked below.
    def merge_from(self, other: "Histogram") -> None:  # repro-lint: disable=RS002
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds "
                f"{other.buckets} != {self.buckets}")
        for key, (counts, total, n) in other._states.items():
            state = self._state(key)
            state[0] = [a + b for a, b in zip(state[0], counts)]
            state[1] += total
            state[2] += n


#: Union of every instrument kind a registry can hold.
AnyInstrument = Union[Counter, Gauge, Histogram]

#: isinstance()-friendly tuple of the instrument classes.
Instrument = (Counter, Gauge, Histogram)

#: Value-restricted type for get-or-create dispatch.
_I = TypeVar("_I", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named instruments with get-or-create semantics and shard merging.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (the declared kind must match),
    so instrumented code never needs registration ceremony — shard
    workers and the parent process materialize the same instruments on
    first use.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, AnyInstrument] = {}

    # -- registration -------------------------------------------------------

    def _get_or_create(self, cls: Type[_I], name: str, *args: Any,
                       **kwargs: Any) -> _I:
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}")
            return instrument
        instrument = cls(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = (), mode: str = "sum") -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames, mode)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets)

    # -- inspection ---------------------------------------------------------

    def get(self, name: str) -> Optional[AnyInstrument]:
        return self._instruments.get(name)

    def instruments(self) -> List[AnyInstrument]:
        """Instruments sorted by name (deterministic export order)."""
        return [self._instruments[name]
                for name in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- merging ------------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s samples into this registry (in place).

        Instruments missing on this side are created with the other
        side's declaration; shared instruments merge value-wise.
        Returns ``self`` for chaining.
        """
        for name, theirs in other._instruments.items():
            # get-or-create ignores the declaration args for an existing
            # instrument (and raises on a kind clash), so dispatching on
            # the incoming kind covers both the fresh and shared cases.
            if isinstance(theirs, Counter):
                self.counter(name, theirs.help,
                             theirs.labelnames).merge_from(theirs)
            elif isinstance(theirs, Gauge):
                self.gauge(name, theirs.help, theirs.labelnames,
                           theirs.mode).merge_from(theirs)
            else:
                self.histogram(name, theirs.help, theirs.labelnames,
                               theirs.buckets).merge_from(theirs)
        return self

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Pure merge: a new registry holding the combined samples."""
        return MetricsRegistry().merge_from(self).merge_from(other)

    def as_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-friendly snapshot (label tuples become ``|``-joined keys)."""
        out: Dict[str, Dict[str, Any]] = {}
        for instrument in self.instruments():
            values: Dict[str, Any]
            if isinstance(instrument, Histogram):
                values = {"|".join(k): {"count": s[2], "sum": s[1],
                                        "buckets": list(s[0])}
                          for k, s in sorted(instrument.samples().items())}
            else:
                values = {"|".join(k): v
                          for k, v in sorted(instrument.samples().items())}
            out[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "values": values,
            }
        return out


def merge_registries(registries: Iterable[MetricsRegistry]
                     ) -> MetricsRegistry:
    """Fold shard registries into one (order-independent totals)."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge_from(registry)
    return merged


# ---------------------------------------------------------------------------
# activation: the process-wide current registry

#: The active registry, or ``None`` when metrics are disabled.  Hot-path
#: guards read this slot directly (``metrics.ACTIVE is not None``) so the
#: disabled cost is one attribute load per instrumented operation.
ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The registry instrumented code should write to (``None`` = off)."""
    return ACTIVE


def activate(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the active registry."""
    global ACTIVE
    ACTIVE = registry if registry is not None else MetricsRegistry()
    return ACTIVE


def deactivate() -> Optional[MetricsRegistry]:
    """Disable metrics collection; returns the registry that was active."""
    global ACTIVE
    registry, ACTIVE = ACTIVE, None
    return registry


def swap(registry: Optional[MetricsRegistry]
         ) -> Optional[MetricsRegistry]:
    """Install ``registry`` (possibly ``None``), returning the previous one.

    The shard executor uses this to give each shard its own registry and
    restore the parent's afterwards, so inline (``workers=1``) and pooled
    execution produce identical per-shard snapshots.
    """
    global ACTIVE
    previous, ACTIVE = ACTIVE, registry
    return previous
