"""Human-readable quantity formatting shared by the CLI and live plane.

One formatter for byte sizes and one for large counts, so every surface
that talks to a human — ``repro-ecs dataset info``, the ``--live``
progress line — renders ``1.4 GiB`` and ``3.8B rows`` the same way.
Report files keep raw integers: humanized strings appear only in
interactive output, never in anything a determinism diff covers.
"""

from __future__ import annotations

#: Binary byte-size suffixes, ascending; the last one absorbs overflow.
_BYTE_UNITS = ("B", "KiB", "MiB", "GiB", "TiB", "PiB")

#: Decimal count suffixes, descending by magnitude (``B`` = billion,
#: matching the paper's "3.8B queries" phrasing).
_COUNT_UNITS = ((1e12, "T"), (1e9, "B"), (1e6, "M"), (1e3, "k"))


def human_bytes(size: int) -> str:
    """``1475739648 -> '1.4 GiB'``; sizes below 1 KiB stay exact."""
    value = float(size)
    for unit in _BYTE_UNITS:
        if abs(value) < 1024.0 or unit == _BYTE_UNITS[-1]:
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_count(count: int) -> str:
    """``3_800_000_000 -> '3.8B'``; counts below 1000 stay exact."""
    value = float(count)
    for bound, suffix in _COUNT_UNITS:
        if abs(value) >= bound:
            scaled = value / bound
            if abs(scaled) >= 100:
                return f"{scaled:.0f}{suffix}"
            return f"{scaled:.1f}{suffix}"
    return str(int(count))
