"""Geography: cities, great-circle distances, and a prefix geolocation DB.

The paper geolocates resolvers and forwarders with Akamai EdgeScape and uses
distances (Figs 4, 5) and RTTs (Tables 2, Figs 6, 7) to judge mapping
quality.  We substitute a deterministic model: a registry of real-world
cities with coordinates, and :class:`GeoDatabase`, a longest-prefix-match
IP-to-location database playing the role of EdgeScape.
"""

from __future__ import annotations

import ipaddress
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the globe (degrees)."""

    lat: float
    lon: float

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance via the haversine formula."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs, in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (math.sin(dphi / 2) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2)
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


@dataclass(frozen=True)
class City:
    """A named location entities can be placed at."""

    name: str
    country: str
    point: GeoPoint

    def distance_km(self, other: "City") -> float:
        return self.point.distance_km(other.point)


def _c(name: str, country: str, lat: float, lon: float) -> City:
    return City(name, country, GeoPoint(lat, lon))


#: World cities used to place clients, resolvers and CDN edges.  The set
#: deliberately includes the locations named in the paper (Cleveland,
#: Chicago, Mountain View, Zurich, Johannesburg, Santiago, Beijing,
#: Shanghai, Guangzhou, Toronto, ...).
WORLD_CITIES: Tuple[City, ...] = (
    _c("Cleveland", "US", 41.50, -81.69),
    _c("Chicago", "US", 41.88, -87.63),
    _c("New York", "US", 40.71, -74.01),
    _c("Ashburn", "US", 39.04, -77.49),
    _c("Miami", "US", 25.76, -80.19),
    _c("Dallas", "US", 32.78, -96.80),
    _c("Denver", "US", 39.74, -104.99),
    _c("Seattle", "US", 47.61, -122.33),
    _c("Los Angeles", "US", 34.05, -118.24),
    _c("Mountain View", "US", 37.39, -122.08),
    _c("Toronto", "CA", 43.65, -79.38),
    _c("Montreal", "CA", 45.50, -73.57),
    _c("Mexico City", "MX", 19.43, -99.13),
    _c("Sao Paulo", "BR", -23.55, -46.63),
    _c("Buenos Aires", "AR", -34.60, -58.38),
    _c("Santiago", "CL", -33.45, -70.67),
    _c("Bogota", "CO", 4.71, -74.07),
    _c("London", "GB", 51.51, -0.13),
    _c("Paris", "FR", 48.86, 2.35),
    _c("Frankfurt", "DE", 50.11, 8.68),
    _c("Amsterdam", "NL", 52.37, 4.90),
    _c("Zurich", "CH", 47.37, 8.54),
    _c("Milan", "IT", 45.46, 9.19),
    _c("Madrid", "ES", 40.42, -3.70),
    _c("Stockholm", "SE", 59.33, 18.07),
    _c("Warsaw", "PL", 52.23, 21.01),
    _c("Moscow", "RU", 55.76, 37.62),
    _c("Istanbul", "TR", 41.01, 28.98),
    _c("Dubai", "AE", 25.20, 55.27),
    _c("Johannesburg", "ZA", -26.20, 28.05),
    _c("Cape Town", "ZA", -33.92, 18.42),
    _c("Lagos", "NG", 6.52, 3.38),
    _c("Nairobi", "KE", -1.29, 36.82),
    _c("Mumbai", "IN", 19.08, 72.88),
    _c("Delhi", "IN", 28.61, 77.21),
    _c("Chennai", "IN", 13.08, 80.27),
    _c("Singapore", "SG", 1.35, 103.82),
    _c("Jakarta", "ID", -6.21, 106.85),
    _c("Bangkok", "TH", 13.76, 100.50),
    _c("Hong Kong", "HK", 22.32, 114.17),
    _c("Taipei", "TW", 25.03, 121.57),
    _c("Manila", "PH", 14.60, 120.98),
    _c("Beijing", "CN", 39.90, 116.41),
    _c("Shanghai", "CN", 31.23, 121.47),
    _c("Guangzhou", "CN", 23.13, 113.26),
    _c("Chengdu", "CN", 30.57, 104.07),
    _c("Seoul", "KR", 37.57, 126.98),
    _c("Tokyo", "JP", 35.68, 139.69),
    _c("Osaka", "JP", 34.69, 135.50),
    _c("Sydney", "AU", -33.87, 151.21),
    _c("Melbourne", "AU", -37.81, 144.96),
    _c("Auckland", "NZ", -36.85, 174.76),
)

_CITIES_BY_NAME: Dict[str, City] = {c.name: c for c in WORLD_CITIES}


def city(name: str) -> City:
    """Look a city up by name; raises ``KeyError`` for unknown names."""
    return _CITIES_BY_NAME[name]


def cities_in(country: str) -> List[City]:
    """All registry cities in ``country`` (ISO-3166 alpha-2 code)."""
    return [c for c in WORLD_CITIES if c.country == country]


IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]


class GeoDatabase:
    """Longest-prefix-match IP geolocation (the EdgeScape substitute).

    Entries map a network prefix to a :class:`City`.  Lookups walk prefix
    lengths from most to least specific, so a /24 placement overrides the
    covering /16's.
    """

    def __init__(self) -> None:
        self._tables: Dict[Tuple[int, int], Dict[int, City]] = {}

    def add(self, network: Union[str, IPNetwork], location: City) -> None:
        """Register ``network`` as located in ``location``."""
        net = ipaddress.ip_network(network, strict=False)
        table = self._tables.setdefault((net.version, net.prefixlen), {})
        table[int(net.network_address)] = location

    def locate(self, address: str) -> Optional[City]:
        """The most specific location covering ``address``, or ``None``."""
        addr = ipaddress.ip_address(address)
        width = 32 if addr.version == 4 else 128
        as_int = int(addr)
        lengths = sorted((length for version, length in self._tables
                          if version == addr.version), reverse=True)
        for length in lengths:
            mask = ((1 << length) - 1) << (width - length) if length else 0
            hit = self._tables[(addr.version, length)].get(as_int & mask)
            if hit is not None:
                return hit
        return None

    def locate_point(self, address: str) -> Optional[GeoPoint]:
        """The coordinates for ``address``, or ``None`` if unknown."""
        c = self.locate(address)
        return c.point if c else None

    def distance_km(self, addr_a: str, addr_b: str) -> Optional[float]:
        """Great-circle distance between two addresses, if both geolocate."""
        a, b = self.locate(addr_a), self.locate(addr_b)
        if a is None or b is None:
            return None
        return a.distance_km(b)

    def __len__(self) -> int:
        return sum(len(t) for t in self._tables.values())
