"""RTT model.

Round-trip times are derived from great-circle distance: a per-hop base
(processing, last-mile) plus a propagation term calibrated so the distances
reported in the paper's Table 2 land in the right regime — a same-region hop
is tens of milliseconds, cross-continent is ~150 ms, and an intercontinental
detour (e.g. to South Africa from Ohio) approaches 300 ms.

The model is deterministic given (distance, jitter seed); experiments that
ping repeatedly (Table 2 does 8 pings and averages) get reproducible jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .geo import GeoPoint

#: Base RTT for any exchange (stack traversal, last mile), milliseconds.
BASE_RTT_MS = 8.0
#: Milliseconds of round-trip per kilometre of great-circle distance.  Fibre
#: propagation is ~0.01 ms/km round trip; routing indirectness roughly
#: doubles it.
MS_PER_KM = 0.021


@dataclass
class LatencyModel:
    """Maps distances to RTTs, with optional multiplicative jitter."""

    base_ms: float = BASE_RTT_MS
    ms_per_km: float = MS_PER_KM
    jitter_fraction: float = 0.05

    def rtt_ms(self, distance_km: float,
               rng: Optional[random.Random] = None) -> float:
        """RTT in milliseconds for a path spanning ``distance_km``."""
        if distance_km < 0:
            raise ValueError("negative distance")
        rtt = self.base_ms + distance_km * self.ms_per_km
        if rng is not None and self.jitter_fraction:
            rtt *= 1.0 + rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return rtt

    def rtt_between(self, a: GeoPoint, b: GeoPoint,
                    rng: Optional[random.Random] = None) -> float:
        """RTT between two geographic points."""
        return self.rtt_ms(a.distance_km(b), rng)


#: Shared default model.
DEFAULT_LATENCY = LatencyModel()
