"""Virtual time.

Every stateful component (caches, probing timers, TTL handling) reads time
from a :class:`SimClock` so experiments are deterministic and can fast-forward
through TTL windows instantly.  No component in the library ever consults the
wall clock.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing virtual clock, in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump forward to ``timestamp``; no-op if already past it."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.3f})"
