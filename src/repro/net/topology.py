"""Topology: autonomous systems, host placement, and address allocation.

The simulated Internet is a flat datagram fabric (see
:mod:`repro.net.transport`) plus this placement layer, which assigns every
entity an IP address inside an AS, places it in a city, and feeds the
geolocation database so distance- and RTT-based analyses work exactly like
the paper's EdgeScape-based ones.
"""

from __future__ import annotations

import ipaddress
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .addr import AddressAllocator, host_in
from .clock import SimClock
from .geo import City, GeoDatabase
from .latency import DEFAULT_LATENCY, LatencyModel

#: IPv4 space carved up among simulated ASes (public, non-special ranges).
DEFAULT_V4_SUPERNET = "16.0.0.0/4"
#: IPv6 space for simulated ASes.
DEFAULT_V6_SUPERNET = "2600::/16"


@dataclass
class _CityBlock:
    """Allocation state for one (AS, city) pair."""

    networks: List[ipaddress.IPv4Network] = field(default_factory=list)
    next_host: int = 1  # skip .0 (network address)


class AutonomousSystem:
    """One AS: a number, a home country, address space, and host placement."""

    def __init__(self, asn: int, name: str, country: str,
                 topology: "Topology", v4_supernet, v6_supernet):
        self.asn = asn
        self.name = name
        self.country = country
        self._topology = topology
        self._v4 = AddressAllocator(v4_supernet)
        self._v6 = AddressAllocator(v6_supernet)
        self._city_blocks: Dict[str, _CityBlock] = {}
        self._v6_city_blocks: Dict[str, _CityBlock] = {}

    def subnet_in(self, city: City, prefixlen: int = 24) -> ipaddress.IPv4Network:
        """Allocate a fresh IPv4 subnet geolocated at ``city``."""
        net = self._v4.subnet(prefixlen)
        self._topology.geo.add(net, city)
        return net

    def subnet6_in(self, city: City, prefixlen: int = 48) -> ipaddress.IPv6Network:
        """Allocate a fresh IPv6 subnet geolocated at ``city``."""
        net = self._v6.subnet(prefixlen)
        self._topology.geo.add(net, city)
        return net

    def host_in(self, city: City) -> str:
        """Place one IPv4 host in ``city``; /24s are allocated on demand."""
        block = self._city_blocks.setdefault(city.name, _CityBlock())
        if not block.networks or block.next_host >= 255:
            block.networks.append(self.subnet_in(city, 24))
            block.next_host = 1
        ip = str(host_in(block.networks[-1], block.next_host))
        block.next_host += 1
        self._topology.host_as[ip] = self
        self._topology.host_city[ip] = city
        return ip

    def host_in_new_subnet(self, city: City) -> str:
        """Place an IPv4 host in ``city`` in a *fresh* /24.

        The caching-behavior experiments (section 6.3) need pairs of
        forwarders in different /24s sharing a /16; since an AS's /24s all
        come from its own /16 slice, two calls to this method give exactly
        that structure.
        """
        block = self._city_blocks.setdefault(city.name, _CityBlock())
        block.networks.append(self.subnet_in(city, 24))
        block.next_host = 1
        ip = str(host_in(block.networks[-1], block.next_host))
        block.next_host += 1
        self._topology.host_as[ip] = self
        self._topology.host_city[ip] = city
        return ip

    def host6_in(self, city: City) -> str:
        """Place one IPv6 host in ``city``; /48s are allocated on demand."""
        block = self._v6_city_blocks.setdefault(city.name, _CityBlock())
        if not block.networks or block.next_host >= 1 << 16:
            block.networks.append(self.subnet6_in(city, 48))
            block.next_host = 1
        ip = str(host_in(block.networks[-1], block.next_host))
        block.next_host += 1
        self._topology.host_as[ip] = self
        self._topology.host_city[ip] = city
        return ip

    def __repr__(self) -> str:
        return f"AS{self.asn}({self.name!r}, {self.country})"


class Topology:
    """The placement layer: ASes, the geo database, clock and latency model."""

    def __init__(self, clock: Optional[SimClock] = None,
                 latency: Optional[LatencyModel] = None,
                 v4_supernet: str = DEFAULT_V4_SUPERNET,
                 v6_supernet: str = DEFAULT_V6_SUPERNET):
        self.clock = clock or SimClock()
        self.latency = latency or DEFAULT_LATENCY
        self.geo = GeoDatabase()
        self.host_as: Dict[str, AutonomousSystem] = {}
        self.host_city: Dict[str, City] = {}
        self._ases: Dict[int, AutonomousSystem] = {}
        self._v4_pool = AddressAllocator(v4_supernet)
        self._v6_pool = AddressAllocator(v6_supernet)
        self._asn_counter = itertools.count(64500)

    def create_as(self, name: str, country: str,
                  asn: Optional[int] = None,
                  v4_prefixlen: int = 16,
                  v6_prefixlen: int = 32) -> AutonomousSystem:
        """Register a new AS with its own slice of address space."""
        if asn is None:
            asn = next(self._asn_counter)
        if asn in self._ases:
            raise ValueError(f"AS{asn} already registered")
        as_ = AutonomousSystem(asn, name, country, self,
                               self._v4_pool.subnet(v4_prefixlen),
                               self._v6_pool.subnet(v6_prefixlen))
        self._ases[asn] = as_
        return as_

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        return self._ases[asn]

    def ases(self) -> List[AutonomousSystem]:
        return list(self._ases.values())

    def as_of(self, ip: str) -> Optional[AutonomousSystem]:
        """The AS that placed ``ip``, if any."""
        return self.host_as.get(ip)

    def city_of(self, ip: str) -> Optional[City]:
        """Where ``ip`` was placed (exact), falling back to the geo DB."""
        hit = self.host_city.get(ip)
        if hit is not None:
            return hit
        return self.geo.locate(ip)

    def distance_km(self, ip_a: str, ip_b: str) -> Optional[float]:
        """Great-circle distance between two hosts' locations."""
        a, b = self.city_of(ip_a), self.city_of(ip_b)
        if a is None or b is None:
            return None
        return a.distance_km(b)

    def rtt_ms(self, ip_a: str, ip_b: str, rng=None, default_km: float = 2000.0) -> float:
        """Model RTT between two hosts (falls back to ``default_km``)."""
        dist = self.distance_km(ip_a, ip_b)
        if dist is None:
            dist = default_km
        return self.latency.rtt_ms(dist, rng)
