"""IP address and prefix utilities shared across the library.

Mostly thin, well-tested wrappers over :mod:`ipaddress` that implement the
prefix arithmetic the ECS machinery needs: truncating an address to *n*
significant bits, computing prefix keys for cache/scope indexing, sampling
addresses inside a prefix, and an address allocator that hands out
non-overlapping subnets deterministically.
"""

from __future__ import annotations

import ipaddress
import random
from functools import lru_cache
from typing import Iterator, Tuple, Union

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]
IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]

# ---------------------------------------------------------------------------
# Integer-native fast lane
#
# The replay and cache hot paths call prefix arithmetic once per simulated
# query; constructing an ``ipaddress`` object each time dominates their
# profile.  The primitives below work on plain ``(version, int)`` pairs with
# precomputed mask tables, and an LRU-interned parse cache absorbs the
# repeated client-address strings every trace contains.  Each fast function
# is pinned byte-for-byte to its readable reference implementation further
# down this module by ``tests/test_fastpath_equivalence.py``.

#: ``MASKS4[bits]`` is the 32-bit netmask keeping the first ``bits`` bits.
MASKS4: Tuple[int, ...] = tuple(
    ((1 << b) - 1) << (32 - b) if b else 0 for b in range(33))
#: ``MASKS6[bits]`` is the 128-bit netmask keeping the first ``bits`` bits.
MASKS6: Tuple[int, ...] = tuple(
    ((1 << b) - 1) << (128 - b) if b else 0 for b in range(129))

#: Mask table per address family, indexed by version.
_MASKS_BY_VERSION = {4: MASKS4, 6: MASKS6}


@lru_cache(maxsize=65536)
def _parse_addr_str(address: str) -> Tuple[int, int]:
    """Parse a textual address into ``(version, int)``, LRU-interned."""
    addr = ipaddress.ip_address(address)
    return addr.version, int(addr)


def parse_addr(address: Union[str, IPAddress]) -> Tuple[int, int]:
    """``(version, integer value)`` of an address, cached for strings.

    The hot-path entry point: trace records carry addresses as strings, and
    real traces repeat the same clients constantly, so the string parse is
    memoized.  Address objects are converted directly (no cache needed —
    both fields are O(1) accessors).
    """
    if isinstance(address, str):
        return _parse_addr_str(address)
    return address.version, int(address)


def truncate_int(version: int, value: int, bits: int) -> int:
    """Integer form of :func:`truncate_address`: mask ``value`` to ``bits``.

    Pure shift/mask arithmetic via the precomputed per-family tables.
    Raises :class:`ValueError` for a prefix length outside the family
    width, matching the reference implementation.
    """
    try:
        if bits < 0:
            raise IndexError
        return value & _MASKS_BY_VERSION[version][bits]
    except (IndexError, KeyError):
        raise ValueError(
            f"prefix length {bits} out of range for IPv{version}") from None


def prefix_key_int(version: int, value: int,
                   bits: int) -> Tuple[int, int, int]:
    """Integer-native :func:`prefix_key`: no address objects constructed.

    Returns the identical ``(version, bits, truncated-integer)`` tuple the
    reference produces, so the two are interchangeable as dict keys.
    """
    return (version, bits, truncate_int(version, value, bits))


def address_width(address: Union[str, IPAddress]) -> int:
    """32 for IPv4 addresses, 128 for IPv6."""
    return 32 if ipaddress.ip_address(address).version == 4 else 128


def truncate_address(address: Union[str, IPAddress], bits: int) -> IPAddress:
    """Zero every bit of ``address`` beyond the first ``bits``.

    >>> str(truncate_address("192.0.2.77", 24))
    '192.0.2.0'
    """
    addr = ipaddress.ip_address(address)
    width = 32 if addr.version == 4 else 128
    if not 0 <= bits <= width:
        raise ValueError(f"prefix length {bits} out of range for IPv{addr.version}")
    mask = ((1 << bits) - 1) << (width - bits) if bits else 0
    # Rebuild with the explicit class: ip_address(int) would guess IPv4
    # for any value below 2**32.
    if addr.version == 4:
        return ipaddress.IPv4Address(int(addr) & mask)
    return ipaddress.IPv6Address(int(addr) & mask)


def prefix_key(address: Union[str, IPAddress], bits: int) -> Tuple[int, int, int]:
    """A hashable key identifying the ``bits``-long prefix of ``address``.

    The key is (version, bits, truncated-integer); two addresses share a key
    iff they fall in the same prefix.
    """
    addr = ipaddress.ip_address(address)
    return (addr.version, bits, int(truncate_address(addr, bits)))


def prefix_text(address: Union[str, IPAddress], bits: int) -> str:
    """Presentation form ``network/bits`` of the covering prefix."""
    return f"{truncate_address(address, bits)}/{bits}"


def same_prefix(a: Union[str, IPAddress], b: Union[str, IPAddress],
                bits: int) -> bool:
    """True if ``a`` and ``b`` fall in the same ``bits``-long prefix."""
    addr_a, addr_b = ipaddress.ip_address(a), ipaddress.ip_address(b)
    if addr_a.version != addr_b.version:
        return False
    return truncate_address(addr_a, bits) == truncate_address(addr_b, bits)


def random_address_in(network: Union[str, IPNetwork],
                      rng: random.Random) -> IPAddress:
    """A uniformly random host address inside ``network``."""
    net = ipaddress.ip_network(network, strict=False)
    lo = int(net.network_address)
    span = net.num_addresses
    return ipaddress.ip_address(lo + rng.randrange(span))


def host_in(network: Union[str, IPNetwork], index: int) -> IPAddress:
    """The ``index``-th address of ``network`` (deterministic placement)."""
    net = ipaddress.ip_network(network, strict=False)
    if index >= net.num_addresses:
        raise ValueError(f"{network} has no host index {index}")
    return ipaddress.ip_address(int(net.network_address) + index)


def is_routable(address: Union[str, IPAddress]) -> bool:
    """False for loopback / link-local / private / unspecified addresses."""
    addr = ipaddress.ip_address(address)
    return not (addr.is_loopback or addr.is_link_local or addr.is_private
                or addr.is_unspecified or addr.is_multicast)


class AddressAllocator:
    """Deterministically hands out non-overlapping subnets of a supernet.

    >>> alloc = AddressAllocator("10.0.0.0/8")
    >>> str(alloc.subnet(16))
    '10.0.0.0/16'
    >>> str(alloc.subnet(24))
    '10.1.0.0/24'
    """

    def __init__(self, supernet: Union[str, IPNetwork]):
        self._supernet = ipaddress.ip_network(supernet, strict=False)
        self._cursor = int(self._supernet.network_address)
        self._end = self._cursor + self._supernet.num_addresses

    def subnet(self, prefixlen: int) -> IPNetwork:
        """Allocate the next free subnet of the requested length."""
        if prefixlen < self._supernet.prefixlen:
            raise ValueError(f"/{prefixlen} larger than supernet {self._supernet}")
        width = 32 if self._supernet.version == 4 else 128
        size = 1 << (width - prefixlen)
        # Align the cursor to the subnet size.
        start = (self._cursor + size - 1) & ~(size - 1)
        if start + size > self._end:
            raise ValueError(f"supernet {self._supernet} exhausted")
        self._cursor = start + size
        return ipaddress.ip_network((start, prefixlen))

    def subnets(self, prefixlen: int, count: int) -> Iterator[IPNetwork]:
        """Allocate ``count`` subnets of the same length."""
        for _ in range(count):
            yield self.subnet(prefixlen)

    @property
    def supernet(self) -> IPNetwork:
        return self._supernet
