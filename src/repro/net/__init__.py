"""Simulated internet: virtual time, geography, addressing, transport."""

from .addr import (AddressAllocator, address_width, host_in, is_routable,
                   parse_addr, prefix_key, prefix_key_int, prefix_text,
                   random_address_in, same_prefix, truncate_address,
                   truncate_int)
from .clock import SimClock
from .geo import (WORLD_CITIES, City, GeoDatabase, GeoPoint, cities_in, city,
                  haversine_km)
from .latency import DEFAULT_LATENCY, LatencyModel
from .topology import AutonomousSystem, Topology
from .transport import (Endpoint, FaultAction, FaultInjector, Network,
                        NetworkStats, QueryOutcome)

__all__ = [
    "AddressAllocator", "AutonomousSystem", "City", "DEFAULT_LATENCY",
    "Endpoint", "FaultAction", "FaultInjector", "GeoDatabase", "GeoPoint",
    "LatencyModel", "Network",
    "NetworkStats", "QueryOutcome", "SimClock", "Topology", "WORLD_CITIES",
    "address_width", "cities_in", "city", "haversine_km", "host_in",
    "is_routable", "parse_addr", "prefix_key", "prefix_key_int",
    "prefix_text", "random_address_in", "same_prefix", "truncate_address",
    "truncate_int",
]
