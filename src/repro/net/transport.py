"""Datagram transport: serializes every message through the wire codec.

:class:`Network` plays the role of UDP over the Internet.  Endpoints register
under their IP addresses and implement ``handle_datagram``; a query is
encoded to bytes, "propagated" (the shared clock advances by the modeled
one-way latency), handled — possibly triggering nested queries that advance
the clock further — and the response propagates back.  The elapsed virtual
time for a full recursive resolution therefore falls out naturally.

Failure injection: per-destination drop rules let tests exercise timeout
paths, a byte-budget counter supports query-amplification analyses, and an
installable :class:`FaultInjector` hook (see :mod:`repro.faults`) lets a
composed fault plan drop, delay, truncate, rewrite, or error-answer any
datagram deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Protocol

from ..dnslib import Message, Rcode, decode_message, encode_message
from ..engine.seeding import derive_seed
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace
from .topology import Topology

#: RTT histogram bucket bounds in milliseconds (virtual time, so the
#: distribution is deterministic for a fixed seed and worker count).
RTT_BUCKETS_MS = (5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 250.0,
                  500.0, 1000.0, 2000.0)


class Endpoint(Protocol):
    """Anything that can receive a DNS datagram."""

    ip: str

    def handle_datagram(self, wire: bytes, src_ip: str, net: "Network",
                        tcp: bool = False) -> Optional[bytes]:
        """Process one datagram; return the response bytes or ``None`` to drop.

        ``tcp`` marks a stream-transport delivery: no UDP size limit
        applies and the response must not be truncated.
        """


@dataclass
class QueryOutcome:
    """Result of one round trip: the response (or None on timeout) and timing."""

    response: Optional[Message]
    elapsed_ms: float
    timed_out: bool = False


@dataclass
class FaultAction:
    """What an installed injector wants done to one datagram.

    ``kind`` names the injector for the fault counters.  The remaining
    fields compose: extra latency applies before any drop/short-circuit,
    ``replace`` substitutes the in-flight message (e.g. an ECS-stripping
    middlebox), ``rcode`` answers the query with an error without ever
    reaching the destination, and ``truncate`` forces TC=1 on a UDP
    response so the client must fall back to TCP.
    """

    kind: str
    drop: bool = False
    extra_one_way_ms: float = 0.0
    rcode: Optional[Rcode] = None
    truncate: bool = False
    replace: Optional[Message] = None


class FaultInjector(Protocol):
    """A fault plan bound to its random streams (see :mod:`repro.faults`).

    Both hooks return ``None`` for "no fault"; the network applies any
    returned :class:`FaultAction` and counts it.  ``now`` is the virtual
    clock at the moment the datagram enters the fabric, so scheduled
    outages key off simulation time, never wall time.
    """

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        """Inspect a query datagram entering the fabric."""

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        """Inspect a response datagram on its way back to ``src_ip``."""


@dataclass
class NetworkStats:
    """Counters for traffic crossing the fabric.

    Merging follows the shard algebra of
    :class:`~repro.analysis.cache_sim.ReplayPartial`: every field folds
    by addition, so per-shard stats combine associatively, commutatively
    and with an all-zero identity regardless of merge order.
    """

    datagrams: int = 0
    bytes_sent: int = 0
    timeouts: int = 0
    drops: int = 0
    faults_injected: int = 0
    per_destination: Dict[str, int] = field(default_factory=dict)

    def record(self, dst_ip: str, nbytes: int) -> None:
        self.datagrams += 1
        self.bytes_sent += nbytes
        self.per_destination[dst_ip] = self.per_destination.get(dst_ip, 0) + 1

    def timeout_rate(self) -> float:
        """Fraction of sent datagrams that timed out (0.0 when idle)."""
        return self.timeouts / self.datagrams if self.datagrams else 0.0

    def drop_rate(self) -> float:
        """Fraction of sent datagrams dropped in flight (0.0 when idle)."""
        return self.drops / self.datagrams if self.datagrams else 0.0

    def fault_rate(self) -> float:
        """Fraction of sent datagrams touched by the injector (0 idle)."""
        return self.faults_injected / self.datagrams if self.datagrams else 0.0

    def merge_from(self, other: "NetworkStats") -> "NetworkStats":
        """Fold another shard's counters into this one (in place)."""
        self.datagrams += other.datagrams
        self.bytes_sent += other.bytes_sent
        self.timeouts += other.timeouts
        self.drops += other.drops
        self.faults_injected += other.faults_injected
        for dst, count in other.per_destination.items():
            self.per_destination[dst] = \
                self.per_destination.get(dst, 0) + count
        return self

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        """Pure merge: a new snapshot holding the combined counters."""
        return NetworkStats().merge_from(self).merge_from(other)


class Network:
    """The simulated datagram fabric."""

    #: Elapsed time charged for a query that never gets answered.
    TIMEOUT_MS = 2000.0

    def __init__(self, topology: Optional[Topology] = None,
                 advance_clock: bool = True,
                 rng: Optional[random.Random] = None,
                 seed: int = 0):
        self.topology = topology or Topology()
        self.clock = self.topology.clock
        self.advance_clock = advance_clock
        self.stats = NetworkStats()
        self._endpoints: Dict[str, Endpoint] = {}
        self._loss: Dict[str, float] = {}
        self._filters: list[Callable[[str, str, bytes], bool]] = []
        self._injector: Optional[FaultInjector] = None
        # A Network built without an explicit rng still has a stable
        # identity: its stream derives from ``seed`` through the same
        # SHA-256 derivation every shard uses, so run-to-run and
        # worker-count reproducibility hold by construction.
        if rng is None:
            rng = random.Random(derive_seed(seed, 0, "net.transport"))
        self._rng = rng

    # -- registry ----------------------------------------------------------

    def attach(self, endpoint: Endpoint, ip: Optional[str] = None) -> None:
        """Register ``endpoint`` at its IP (or an explicit alias address)."""
        self._endpoints[ip or endpoint.ip] = endpoint

    def detach(self, ip: str) -> None:
        self._endpoints.pop(ip, None)

    def endpoint_at(self, ip: str) -> Optional[Endpoint]:
        return self._endpoints.get(ip)

    # -- failure injection ---------------------------------------------------

    def set_loss(self, dst_ip: str, probability: float) -> None:
        """Drop datagrams to ``dst_ip`` with the given probability."""
        self._loss[dst_ip] = probability

    def add_filter(self, predicate: Callable[[str, str, bytes], bool]) -> None:
        """Install a drop filter ``(src, dst, wire) -> drop?``."""
        self._filters.append(predicate)

    def install_injector(self, injector: Optional[FaultInjector]) -> None:
        """Install (or, with ``None``, remove) the fault-injection hook.

        The ad-hoc ``set_loss``/``add_filter`` rules stay functional as a
        shim; a :mod:`repro.faults` plan is the structured replacement.
        """
        self._injector = injector

    def _dropped(self, src_ip: str, dst_ip: str, wire: bytes) -> bool:
        p = self._loss.get(dst_ip, 0.0)
        if p and self._rng.random() < p:
            return True
        return any(f(src_ip, dst_ip, wire) for f in self._filters)

    def _note_fault(self, kind: str) -> None:
        self.stats.faults_injected += 1
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("repro_faults_injected_total",
                        "Fault-injector actions applied to datagrams.",
                        ("kind",)).inc(1, kind)

    # -- the data path -------------------------------------------------------

    def query(self, src_ip: str, dst_ip: str, message: Message,
              rng: Optional[random.Random] = None,
              tcp: bool = False) -> QueryOutcome:
        """Send ``message`` and wait (in virtual time) for the response.

        ``tcp=True`` models a stream query (retry after truncation): one
        extra RTT is charged for the handshake and no size limit applies.

        When tracing is active the round trip becomes a ``net.query``
        span; because the destination endpoint handles the datagram
        inline, every span it opens (forward hops, resolve, the
        authoritative's answer) nests inside this one — the query
        lifecycle falls out of the call tree.
        """
        tracer = _obs_trace.ACTIVE
        if tracer is None:
            return self._transmit(src_ip, dst_ip, message, rng, tcp)
        with tracer.span("net.query", src=src_ip, dst=dst_ip,
                         transport="tcp" if tcp else "udp") as span:
            outcome = self._transmit(src_ip, dst_ip, message, rng, tcp)
            span.attrs["timed_out"] = outcome.timed_out
            span.attrs["elapsed_ms"] = round(outcome.elapsed_ms, 3)
        return outcome

    def _transmit(self, src_ip: str, dst_ip: str, message: Message,
                  rng: Optional[random.Random], tcp: bool) -> QueryOutcome:
        start = self.clock.now()
        injector = self._injector
        action = None
        if injector is not None:
            action = injector.on_query(src_ip, dst_ip, message, tcp, start)
            if action is not None:
                self._note_fault(action.kind)
                if action.replace is not None:
                    # e.g. an ECS-stripping middlebox rewrote the query.
                    message = action.replace
        wire = encode_message(message)
        self.stats.record(dst_ip, len(wire))
        transport = "tcp" if tcp else "udp"
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("repro_net_datagrams_total",
                        "Datagrams sent across the fabric.",
                        ("transport",)).inc(1, transport)
            reg.counter("repro_net_bytes_sent_total",
                        "Query bytes put on the wire.",
                        ("transport",)).inc(len(wire), transport)
        one_way_s = self.topology.rtt_ms(src_ip, dst_ip, rng) / 2.0 / 1000.0
        if action is not None and action.extra_one_way_ms:
            one_way_s += action.extra_one_way_ms / 1000.0

        endpoint = self._endpoints.get(dst_ip)
        if (action is not None and action.drop) or endpoint is None \
                or self._dropped(src_ip, dst_ip, wire):
            if endpoint is None:
                self.stats.timeouts += 1
                outcome_label = "timeout"
            else:
                self.stats.drops += 1
                outcome_label = "drop"
            if self.advance_clock:
                self.clock.advance(self.TIMEOUT_MS / 1000.0)
            if reg is not None:
                self._record_outcome(reg, transport, outcome_label,
                                     self.TIMEOUT_MS)
            return QueryOutcome(None, self.TIMEOUT_MS, timed_out=True)

        if action is not None and action.rcode is not None:
            # A middlebox or broken server answers with an error rcode;
            # the destination never sees the query, but a full round
            # trip still elapses.
            faulted = message.make_response()
            faulted.rcode = action.rcode
            if self.advance_clock:
                if tcp:
                    self.clock.advance(2 * one_way_s)  # TCP handshake
                self.clock.advance(2 * one_way_s)
            elapsed_ms = (self.clock.now() - start) * 1000.0 \
                if self.advance_clock else one_way_s * 2000.0
            if reg is not None:
                self._record_outcome(reg, transport, "faulted", elapsed_ms)
            return QueryOutcome(faulted, elapsed_ms)

        if self.advance_clock:
            if tcp:
                self.clock.advance(2 * one_way_s)  # TCP handshake
            self.clock.advance(one_way_s)
        response_wire = endpoint.handle_datagram(wire, src_ip, self, tcp=tcp)
        if response_wire is None:
            return self._response_lost(start, transport)
        response = decode_message(response_wire)
        if injector is not None:
            r_action = injector.on_response(src_ip, dst_ip, response, tcp,
                                            self.clock.now())
            if r_action is not None:
                self._note_fault(r_action.kind)
                if r_action.drop:
                    return self._response_lost(start, transport)
                if r_action.extra_one_way_ms:
                    one_way_s += r_action.extra_one_way_ms / 1000.0
                if r_action.replace is not None:
                    response = r_action.replace
                if r_action.truncate and not tcp:
                    # The response exceeded some middlebox's appetite:
                    # deliver an empty TC=1 answer (RFC 1035 section
                    # 4.2.1) so the client retries over TCP.
                    response.truncated = True
                    response.answers = []
        if self.advance_clock:
            self.clock.advance(one_way_s)
        elapsed_ms = (self.clock.now() - start) * 1000.0 if self.advance_clock \
            else one_way_s * 2000.0
        if reg is not None:
            self._record_outcome(reg, transport, "answered", elapsed_ms)
        return QueryOutcome(response, elapsed_ms)

    def _response_lost(self, start: float, transport: str) -> QueryOutcome:
        """The response never made it back: charge the full timeout."""
        self.stats.drops += 1
        if self.advance_clock:
            # the timeout clock started when the query was sent
            deadline = start + self.TIMEOUT_MS / 1000.0
            self.clock.advance_to(deadline)
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            self._record_outcome(reg, transport, "drop", self.TIMEOUT_MS)
        return QueryOutcome(None, self.TIMEOUT_MS, timed_out=True)

    @staticmethod
    def _record_outcome(reg, transport: str, outcome: str,
                        elapsed_ms: float) -> None:
        """Out-of-band fault/latency instrumentation for one round trip."""
        reg.counter("repro_net_queries_total",
                    "Round trips by transport and outcome.",
                    ("transport", "outcome")).inc(1, transport, outcome)
        reg.histogram("repro_net_rtt_ms",
                      "Virtual round-trip time per query (ms).",
                      ("transport", "outcome"),
                      buckets=RTT_BUCKETS_MS).observe(elapsed_ms, transport,
                                                      outcome)

    def tcp_handshake_ms(self, src_ip: str, dst_ip: str,
                         rng: Optional[random.Random] = None) -> float:
        """Model a TCP connect: one RTT to the destination.

        Used by the Atlas-like probes (Figs 6, 7) and the CNAME-flattening
        case study (Fig 8); no bytes actually flow.
        """
        return self.topology.rtt_ms(src_ip, dst_ip, rng)

    def ping_ms(self, src_ip: str, dst_ip: str, count: int = 8,
                rng: Optional[random.Random] = None) -> float:
        """Average of ``count`` modeled pings (Table 2 averages 8)."""
        rng = rng or self._rng
        if count <= 0:
            raise ValueError("ping count must be positive")
        samples = [self.topology.rtt_ms(src_ip, dst_ip, rng)
                   for _ in range(count)]
        return sum(samples) / len(samples)
