"""Named chaos scenarios: ready-made fault plans for the CLI and tests.

Each preset is a frozen :class:`~repro.faults.plan.FaultPlan`; being pure
description, presets are shared safely — every run re-binds its own
random streams from its fault seed.
"""

from __future__ import annotations

from typing import Dict, List

from ..dnslib import Rcode
from .injectors import (BurstLossSpec, EcsStripSpec, LatencyJitterSpec,
                        LatencySpikeSpec, OutageSpec, PacketLossSpec,
                        RcodeFaultSpec, TruncationSpec)
from .plan import FaultPlan

PRESETS: Dict[str, FaultPlan] = {
    # Baseline: injector machinery on, zero faults — for differential runs.
    "clean": FaultPlan("clean", ()),
    # Independent 15% loss everywhere: the retry/backoff workhorse.
    "lossy": FaultPlan("lossy", (PacketLossSpec(rate=0.15),)),
    # The graceful-degradation ceiling the test layer certifies.
    "heavy-loss": FaultPlan("heavy-loss", (PacketLossSpec(rate=0.30),)),
    # Correlated loss: Gilbert-Elliott bursts, like a flapping path.
    "bursty": FaultPlan("bursty", (BurstLossSpec(),)),
    # Stretchy RTTs plus occasional half-second spikes.
    "jittery": FaultPlan("jittery", (
        LatencyJitterSpec(max_extra_ms=40.0),
        LatencySpikeSpec(probability=0.05, extra_ms=400.0))),
    # Authoritatives that choke on ECS (RFC 7871 section 7.1) over a
    # mildly lossy floor: exercises the no-ECS downgrade rung.
    "flaky-auth": FaultPlan("flaky-auth", (
        RcodeFaultSpec(rcode=Rcode.FORMERR, probability=0.25,
                       only_ecs=True),
        PacketLossSpec(rate=0.05))),
    # Middleboxes stripping ECS plus occasional REFUSED on ECS queries.
    "ecs-hostile": FaultPlan("ecs-hostile", (
        EcsStripSpec(probability=0.5),
        RcodeFaultSpec(rcode=Rcode.REFUSED, probability=0.1,
                       only_ecs=True))),
    # Forced TC=1 on UDP answers: drives the TCP fallback path hard.
    "truncating": FaultPlan("truncating", (TruncationSpec(probability=0.3),)),
    # A scheduled blackout window early in the (virtual) campaign.
    "outage": FaultPlan("outage", (OutageSpec(start_s=2.0, end_s=20.0),)),
}


def preset(name: str) -> FaultPlan:
    """Look up a preset; raises with the known names on a typo."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(
            f"unknown chaos preset {name!r}; known presets: {known}"
        ) from None


def preset_names() -> List[str]:
    return sorted(PRESETS)
