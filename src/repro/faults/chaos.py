"""Chaos mode: scan campaigns under a composed fault plan.

Shards are fully independent universes.  Shard *i* builds its own
:class:`~repro.datasets.scan_dataset.ScanUniverse` from
``derive_seed(seed, i, "chaos.universe")``, binds the plan's injectors
with ``plan.bind(fault_seed, i)``, installs them on the shard's network
and drives the scan with a retrying stub client.  Per-shard partials
fold by the usual all-additive shard algebra, so the merged result —
and the :class:`~repro.engine.executor.EngineReport` metrics — are
byte-identical at every ``--workers`` count.

Degradation is first-class, not an error: a chaos result under loss
reports fewer responding ingresses and flags itself partial instead of
raising, which is the "analyses degrade gracefully" contract the test
layer certifies up to 30% loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.report import format_network_stats, format_table
from ..datasets.scan_dataset import ScanUniverseBuilder
from ..engine.executor import EngineReport, run_sharded
from ..engine.pool import WorkerPool, worker_entrypoint
from ..engine.seeding import derive_seed
from ..engine.sharding import DEFAULT_SHARDS, shard_bounds
from ..measure.scanner import Scanner
from ..net.transport import NetworkStats
from ..obs import live as _obs_live
from .plan import FaultPlan
from .retry import RetryPolicy

#: Retry posture for chaos scans: three attempts per server with
#: exponential backoff — aggressive enough that a campaign stays useful
#: under the 30% ``heavy-loss`` preset.
CHAOS_RETRY_POLICY = RetryPolicy(max_attempts=3, backoff_base_ms=250.0,
                                 jitter_fraction=0.5)


@dataclass
class ChaosPartial:
    """One shard's chaos-scan tallies; folds by addition."""

    probes: int = 0
    responded: int = 0
    unanswered: int = 0
    records: int = 0
    ecs_records: int = 0
    attempts: int = 0
    retries: int = 0
    ecs_downgrades: int = 0
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    network: NetworkStats = field(default_factory=NetworkStats)

    def merge_from(self, other: "ChaosPartial") -> "ChaosPartial":
        """Fold another shard's tallies into this one (in place)."""
        self.probes += other.probes
        self.responded += other.responded
        self.unanswered += other.unanswered
        self.records += other.records
        self.ecs_records += other.ecs_records
        self.attempts += other.attempts
        self.retries += other.retries
        self.ecs_downgrades += other.ecs_downgrades
        for kind, count in other.faults_by_kind.items():
            self.faults_by_kind[kind] = \
                self.faults_by_kind.get(kind, 0) + count
        self.network.merge_from(other.network)
        return self

    def merge(self, other: "ChaosPartial") -> "ChaosPartial":
        """Pure merge: a new partial holding the combined tallies."""
        return ChaosPartial().merge_from(self).merge_from(other)


@dataclass
class ChaosResult:
    """The merged campaign outcome plus its provenance."""

    scenario: str
    seed: int
    fault_seed: int
    totals: ChaosPartial

    @property
    def response_rate(self) -> float:
        totals = self.totals
        return totals.responded / totals.probes if totals.probes else 0.0

    @property
    def degraded(self) -> bool:
        """True when faults left marks: results are flagged partial."""
        totals = self.totals
        return totals.unanswered > 0 or totals.retries > 0 \
            or totals.network.faults_injected > 0

    def report(self) -> str:
        """Deterministic text report (what the CI smoke diffs)."""
        totals = self.totals
        rows: List[Tuple[str, object]] = [
            ("scenario", self.scenario),
            ("seed", self.seed),
            ("fault seed", self.fault_seed),
            ("probes", totals.probes),
            ("responding ingress", totals.responded),
            ("unanswered", totals.unanswered),
            ("response rate", f"{self.response_rate:.2%}"),
            ("scan records", totals.records),
            ("ecs records", totals.ecs_records),
            ("client attempts", totals.attempts),
            ("client retries", totals.retries),
            ("ecs downgrades", totals.ecs_downgrades),
            ("partial results", "yes" if self.degraded else "no"),
        ]
        for kind in sorted(totals.faults_by_kind):
            rows.append((f"faults[{kind}]", totals.faults_by_kind[kind]))
        return "\n".join([
            format_table(("metric", "value"), rows,
                         title=f"Chaos scan — {self.scenario}"),
            "",
            format_network_stats(totals.network),
        ])


def _probe_count(partial: ChaosPartial) -> int:
    return partial.probes


@worker_entrypoint
def _chaos_shard(plan: FaultPlan, policy: RetryPolicy, seed: int,
                 fault_seed: int, shard_index: int,
                 ingress_count: int) -> ChaosPartial:
    """Build one universe, fault it, scan it.  Module-level: picklable."""
    universe = ScanUniverseBuilder(
        seed=derive_seed(seed, shard_index, "chaos.universe"),
        ingress_count=ingress_count).build()
    emitter = _obs_live.ACTIVE
    if emitter is not None:
        emitter.event("chaos_universe", task=f"chaos[{plan.name}]",
                      shard=shard_index, ingress=ingress_count)
    bound = plan.bind(fault_seed, shard_index)
    universe.net.install_injector(bound)
    scanner = Scanner(universe, retry_policy=policy)
    result = scanner.scan()
    if emitter is not None:
        emitter.progress(f"chaos[{plan.name}]", shard_index,
                         records=len(result.records))
    targets = universe.forwarder_ips
    return ChaosPartial(
        probes=len(targets),
        responded=len(result.responding_ingress),
        unanswered=len(targets) - len(result.responding_ingress),
        records=len(result.records),
        ecs_records=sum(1 for r in result.records if r.has_ecs),
        attempts=scanner.client.attempts,
        retries=scanner.client.retries,
        ecs_downgrades=scanner.client.ecs_downgrades,
        faults_by_kind=dict(bound.injected),
        network=universe.net.stats)


def run_chaos(plan: FaultPlan, *, seed: int = 0, fault_seed: int = 0,
              ingress: int = 120, shards: int = DEFAULT_SHARDS,
              workers: int = 1,
              retry_policy: Optional[RetryPolicy] = None,
              chunk_size: Optional[int] = None,
              pool: Optional[WorkerPool] = None
              ) -> Tuple[ChaosResult, EngineReport]:
    """Run the chaos campaign sharded; returns (result, engine report).

    The fault plan, retry policy and seeds are shared run state —
    serialized once per run, decoded once per worker — so each shard's
    private spec is just ``(index, size)``.
    """
    policy = retry_policy if retry_policy is not None else CHAOS_RETRY_POLICY
    sizes = [hi - lo for lo, hi in shard_bounds(ingress, shards)]
    shard_args = [(index, size)
                  for index, size in enumerate(sizes) if size > 0]
    partials, engine_report = run_sharded(
        _chaos_shard, shard_args, workers=workers,
        task=f"chaos[{plan.name}]", count_of=_probe_count,
        chunk_size=chunk_size, shared=(plan, policy, seed, fault_seed),
        pool=pool)
    totals = ChaosPartial()
    for partial in partials:
        totals.merge_from(partial)
    return (ChaosResult(plan.name, seed, fault_seed, totals),
            engine_report)
