"""Deterministic fault injection, retry policies, and chaos scenarios.

The paper's measurements ride on a flaky real Internet; this package
lets the reproduction express that flakiness on purpose.  Three layers:

* :mod:`~repro.faults.injectors` / :mod:`~repro.faults.plan` — composable
  fault sources (loss, bursts, jitter, truncation, error rcodes,
  ECS-stripping middleboxes, outages) bound to SHA-256-derived random
  streams and installed on the simulated network;
* :mod:`~repro.faults.retry` — the one :class:`RetryPolicy` ladder every
  query site shares, including the RFC 7871 §7.1 "retry without ECS on
  FORMERR" downgrade;
* :mod:`~repro.faults.chaos` — sharded scan campaigns under a plan,
  merged by the engine so results are bit-identical at any worker count.

The chaos runner pulls in the dataset builders, so it loads lazily;
everything else imports eagerly and dependency-light.
"""

from __future__ import annotations

from typing import Any

from .injectors import (BOTH, QUERY, RESPONSE, BoundInjector, BurstLossSpec,
                        EcsStripSpec, LatencyJitterSpec, LatencySpikeSpec,
                        OutageSpec, PacketLossSpec, RcodeFaultSpec,
                        TruncationSpec)
from .plan import BoundPlan, FaultPlan, InjectorSpec
from .presets import PRESETS, preset, preset_names
from .retry import (QueryFactory, RetryOutcome, RetryPolicy,
                    backoff_delay_ms, backoff_jitter, execute_with_retries)

__all__ = [
    "BOTH", "BoundInjector", "BoundPlan", "BurstLossSpec",
    "CHAOS_RETRY_POLICY", "ChaosPartial", "ChaosResult", "EcsStripSpec",
    "FaultPlan", "InjectorSpec", "LatencyJitterSpec", "LatencySpikeSpec",
    "OutageSpec", "PRESETS", "PacketLossSpec", "QUERY", "QueryFactory",
    "RESPONSE", "RcodeFaultSpec", "RetryOutcome", "RetryPolicy",
    "TruncationSpec", "backoff_delay_ms", "backoff_jitter",
    "execute_with_retries", "preset", "preset_names", "run_chaos",
]

_LAZY = {
    "CHAOS_RETRY_POLICY": "chaos",
    "ChaosPartial": "chaos",
    "ChaosResult": "chaos",
    "run_chaos": "chaos",
}


def __getattr__(name: str) -> Any:
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f".{submodule}", __name__)
    return getattr(module, name)
