"""Fault-injector specs: the vocabulary a :class:`~repro.faults.FaultPlan`
composes.

Each spec is a small frozen (hence picklable — chaos shards cross process
boundaries) dataclass describing one fault source: Bernoulli packet loss,
Gilbert–Elliott burst loss, latency jitter and spikes, forced truncation,
error rcodes on ECS-bearing queries, ECS-stripping middleboxes, and
scheduled outages.  ``spec.bind(rng)`` turns the description into a
*bound* injector holding its own :class:`random.Random` stream; the plan
derives one stream per injector from the engine's SHA-256 seeding, so the
same plan + seed replays the same faults at any worker count.

Bound injectors implement the :class:`~repro.net.transport.FaultInjector`
hook pair and draw from their stream **only for datagrams matching their
filter**, which keeps each injector's stream independent of unrelated
traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Tuple

from ..dnslib import Message, Rcode
from ..net.transport import FaultAction

#: Direction filters: faults can hit the query leg, the response leg, or both.
QUERY = "query"
RESPONSE = "response"
BOTH = "both"


def _matches(dst: Optional[str], dst_ip: str) -> bool:
    return dst is None or dst == dst_ip


class BoundInjector:
    """Base bound injector: a no-op :class:`FaultInjector`.

    Subclasses override one or both hooks; returning ``None`` means "no
    fault for this datagram".
    """

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        return None

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        return None


# -- packet loss -----------------------------------------------------------


@dataclass(frozen=True)
class PacketLossSpec:
    """Independent (Bernoulli) per-datagram loss on matching links."""

    kind: ClassVar[str] = "loss"

    rate: float
    dst: Optional[str] = None
    direction: str = BOTH

    def bind(self, rng: random.Random) -> "_BoundLoss":
        return _BoundLoss(self, rng)


class _BoundLoss(BoundInjector):
    def __init__(self, spec: PacketLossSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng

    def _roll(self, dst_ip: str, direction: str) -> Optional[FaultAction]:
        spec = self.spec
        if not _matches(spec.dst, dst_ip):
            return None
        if spec.direction not in (direction, BOTH):
            return None
        if self.rng.random() < spec.rate:
            return FaultAction(kind=spec.kind, drop=True)
        return None

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        return self._roll(dst_ip, QUERY)

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        return self._roll(dst_ip, RESPONSE)


@dataclass(frozen=True)
class BurstLossSpec:
    """Gilbert–Elliott two-state burst loss.

    Each (src, dst) link carries its own good/burst Markov chain: every
    matching datagram first advances the chain (``p_enter_burst`` /
    ``p_exit_burst`` transition probabilities), then drops with the loss
    rate of the state it landed in.  Models the correlated loss of a
    congested or flapping path, which independent Bernoulli loss cannot.
    """

    kind: ClassVar[str] = "burst-loss"

    p_enter_burst: float = 0.05
    p_exit_burst: float = 0.25
    loss_good: float = 0.0
    loss_burst: float = 0.9
    dst: Optional[str] = None
    direction: str = BOTH

    def bind(self, rng: random.Random) -> "_BoundBurstLoss":
        return _BoundBurstLoss(self, rng)


class _BoundBurstLoss(BoundInjector):
    def __init__(self, spec: BurstLossSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._burst: Dict[Tuple[str, str], bool] = {}

    def _roll(self, src_ip: str, dst_ip: str,
              direction: str) -> Optional[FaultAction]:
        spec = self.spec
        if not _matches(spec.dst, dst_ip):
            return None
        if spec.direction not in (direction, BOTH):
            return None
        link = (src_ip, dst_ip)
        in_burst = self._burst.get(link, False)
        if in_burst:
            in_burst = not (self.rng.random() < spec.p_exit_burst)
        else:
            in_burst = self.rng.random() < spec.p_enter_burst
        self._burst[link] = in_burst
        rate = spec.loss_burst if in_burst else spec.loss_good
        if rate and self.rng.random() < rate:
            return FaultAction(kind=spec.kind, drop=True)
        return None

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        return self._roll(src_ip, dst_ip, QUERY)

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        return self._roll(src_ip, dst_ip, RESPONSE)


# -- latency ---------------------------------------------------------------


@dataclass(frozen=True)
class LatencyJitterSpec:
    """Uniform extra one-way latency in ``[0, max_extra_ms]`` per query.

    Touches every matching query datagram (the fault counter therefore
    counts matching traffic, not anomalies); applied to the forward leg,
    so both directions of the round trip stretch.
    """

    kind: ClassVar[str] = "jitter"

    max_extra_ms: float = 30.0
    dst: Optional[str] = None

    def bind(self, rng: random.Random) -> "_BoundJitter":
        return _BoundJitter(self, rng)


class _BoundJitter(BoundInjector):
    def __init__(self, spec: LatencyJitterSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        spec = self.spec
        if not _matches(spec.dst, dst_ip):
            return None
        extra = self.rng.uniform(0.0, spec.max_extra_ms)
        return FaultAction(kind=spec.kind, extra_one_way_ms=extra)


@dataclass(frozen=True)
class LatencySpikeSpec:
    """Occasional large latency spikes (bufferbloat, rerouting events)."""

    kind: ClassVar[str] = "spike"

    probability: float = 0.02
    extra_ms: float = 500.0
    dst: Optional[str] = None

    def bind(self, rng: random.Random) -> "_BoundSpike":
        return _BoundSpike(self, rng)


class _BoundSpike(BoundInjector):
    def __init__(self, spec: LatencySpikeSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        spec = self.spec
        if not _matches(spec.dst, dst_ip):
            return None
        if self.rng.random() < spec.probability:
            return FaultAction(kind=spec.kind,
                               extra_one_way_ms=spec.extra_ms)
        return None


# -- protocol mangling -----------------------------------------------------


@dataclass(frozen=True)
class TruncationSpec:
    """Force TC=1 on UDP responses so clients must fall back to TCP."""

    kind: ClassVar[str] = "truncate"

    probability: float = 0.1
    dst: Optional[str] = None

    def bind(self, rng: random.Random) -> "_BoundTruncation":
        return _BoundTruncation(self, rng)


class _BoundTruncation(BoundInjector):
    def __init__(self, spec: TruncationSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        spec = self.spec
        if tcp or response.truncated:
            return None
        if not _matches(spec.dst, dst_ip):
            return None
        if self.rng.random() < spec.probability:
            return FaultAction(kind=spec.kind, truncate=True)
        return None


@dataclass(frozen=True)
class RcodeFaultSpec:
    """Answer matching queries with an error rcode, server never consulted.

    With ``only_ecs`` (the default) the fault hits ECS-bearing queries
    only — the RFC 7871 §7.1 scenario where an authoritative (or a
    middlebox in front of it) chokes on the option and the client must
    retry without ECS.
    """

    kind: ClassVar[str] = "rcode"

    rcode: Rcode = Rcode.FORMERR
    probability: float = 1.0
    only_ecs: bool = True
    dst: Optional[str] = None

    def bind(self, rng: random.Random) -> "_BoundRcodeFault":
        return _BoundRcodeFault(self, rng)


class _BoundRcodeFault(BoundInjector):
    def __init__(self, spec: RcodeFaultSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng
        self._label = f"rcode-{spec.rcode.name.lower()}"

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        spec = self.spec
        if not _matches(spec.dst, dst_ip):
            return None
        if spec.only_ecs and message.ecs() is None:
            return None
        if self.rng.random() < spec.probability:
            return FaultAction(kind=self._label, rcode=spec.rcode)
        return None


@dataclass(frozen=True)
class EcsStripSpec:
    """A middlebox that silently removes the ECS option from queries.

    The classic "home router drops unknown EDNS options" failure the
    paper's scan methodology works around by probing without ECS.
    """

    kind: ClassVar[str] = "ecs-strip"

    probability: float = 1.0
    dst: Optional[str] = None

    def bind(self, rng: random.Random) -> "_BoundEcsStrip":
        return _BoundEcsStrip(self, rng)


class _BoundEcsStrip(BoundInjector):
    def __init__(self, spec: EcsStripSpec, rng: random.Random) -> None:
        self.spec = spec
        self.rng = rng

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        spec = self.spec
        if not _matches(spec.dst, dst_ip):
            return None
        if message.ecs() is None:
            return None
        if self.rng.random() < spec.probability:
            stripped = message.copy()
            stripped.set_ecs(None)
            return FaultAction(kind=spec.kind, replace=stripped)
        return None


# -- outages ---------------------------------------------------------------


@dataclass(frozen=True)
class OutageSpec:
    """Scheduled blackout: drop everything to ``dst`` (or everywhere)
    while the *virtual* clock is inside ``[start_s, end_s)``.

    Purely time-driven — no randomness — so outages line up exactly
    across reruns and worker counts.
    """

    kind: ClassVar[str] = "outage"

    start_s: float
    end_s: float
    dst: Optional[str] = None

    def bind(self, rng: random.Random) -> "_BoundOutage":
        return _BoundOutage(self)


class _BoundOutage(BoundInjector):
    def __init__(self, spec: OutageSpec) -> None:
        self.spec = spec

    def _blackout(self, dst_ip: str, now: float) -> Optional[FaultAction]:
        spec = self.spec
        if not _matches(spec.dst, dst_ip):
            return None
        if spec.start_s <= now < spec.end_s:
            return FaultAction(kind=spec.kind, drop=True)
        return None

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        return self._blackout(dst_ip, now)

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        return self._blackout(dst_ip, now)
