"""Fault plans: a named, composable, seedable bundle of injectors.

A :class:`FaultPlan` is pure description — frozen, picklable, hashable —
and :meth:`FaultPlan.bind` is where determinism is anchored: every
injector gets its own :class:`random.Random` stream derived through the
engine's SHA-256 seeding from ``(fault_seed, shard_index, plan name,
injector position)``.  Two consequences:

* the same plan + fault seed replays bit-identically, at any worker
  count, because each shard binds its own streams from its own index;
* injectors never share a stream, so adding one to a plan cannot
  perturb the faults another injects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from ..dnslib import Message
from ..engine.seeding import derive_seed
from ..net.transport import FaultAction


class InjectorSpec(Protocol):
    """What a plan composes: a picklable spec that binds to an RNG."""

    kind: str

    def bind(self, rng: random.Random) -> "BoundInjectorLike":
        """Attach the spec to its private random stream."""


class BoundInjectorLike(Protocol):
    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        """Inspect a query datagram."""

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        """Inspect a response datagram."""


@dataclass(frozen=True)
class FaultPlan:
    """An ordered composition of injector specs under one scenario name."""

    name: str = "custom"
    injectors: Tuple[InjectorSpec, ...] = ()

    def bind(self, fault_seed: int, shard_index: int = 0) -> "BoundPlan":
        """Bind every injector to its derived random stream."""
        bound: List[BoundInjectorLike] = []
        for index, spec in enumerate(self.injectors):
            stream = random.Random(derive_seed(
                fault_seed, shard_index,
                f"faults:{self.name}:{index}:{spec.kind}"))
            bound.append(spec.bind(stream))
        return BoundPlan(self.name, tuple(bound))

    def describe(self) -> str:
        """Human-readable injector catalog for reports and --help."""
        if not self.injectors:
            return f"{self.name}: no injectors (clean network)"
        lines = [f"{self.name}:"]
        lines.extend(f"  - {spec!r}" for spec in self.injectors)
        return "\n".join(lines)


class BoundPlan:
    """A plan bound to its streams; the installable network hook.

    Implements :class:`~repro.net.transport.FaultInjector` by folding the
    injectors' individual actions into one: extra latencies add up, a
    replacement message is seen by the injectors after it, the first
    error rcode wins, and a drop short-circuits (a dropped datagram never
    reaches later injectors).  ``injected`` tallies actions per kind —
    deterministic and independent of the obs layer, so chaos shards can
    report fault mixes without an active registry.
    """

    def __init__(self, name: str,
                 injectors: Tuple[BoundInjectorLike, ...]) -> None:
        self.name = name
        self.injectors = injectors
        self.injected: Dict[str, int] = {}

    def _compose(self, hook: str, src_ip: str, dst_ip: str,
                 message: Message, tcp: bool,
                 now: float) -> Optional[FaultAction]:
        kinds: List[str] = []
        extra_ms = 0.0
        truncate = False
        rcode = None
        replace = None
        drop = False
        current = message
        for injector in self.injectors:
            action = getattr(injector, hook)(src_ip, dst_ip, current, tcp,
                                             now)
            if action is None:
                continue
            kinds.append(action.kind)
            self.injected[action.kind] = \
                self.injected.get(action.kind, 0) + 1
            extra_ms += action.extra_one_way_ms
            if action.replace is not None:
                current = action.replace
                replace = current
            if action.truncate:
                truncate = True
            if action.rcode is not None and rcode is None:
                rcode = action.rcode
            if action.drop:
                drop = True
                break
        if not kinds:
            return None
        return FaultAction(kind="+".join(kinds), drop=drop,
                           extra_one_way_ms=extra_ms, rcode=rcode,
                           truncate=truncate, replace=replace)

    def on_query(self, src_ip: str, dst_ip: str, message: Message,
                 tcp: bool, now: float) -> Optional[FaultAction]:
        return self._compose("on_query", src_ip, dst_ip, message, tcp, now)

    def on_response(self, src_ip: str, dst_ip: str, response: Message,
                    tcp: bool, now: float) -> Optional[FaultAction]:
        return self._compose("on_response", src_ip, dst_ip, response, tcp,
                             now)
