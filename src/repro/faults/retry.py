"""The shared retry/backoff/failover ladder (RFC 7871 §7.1 degradation).

One implementation of client-side resilience for every query-issuing
site in the reproduction: the dig-like stub client, the scan driver, the
recursive resolver's upstream probes, and forwarder failover.  The paper
rides on resolvers that time out, fail over between nameservers, retry
truncated answers over TCP (RFC 1035 §4.2.1), fall back to plain DNS for
pre-EDNS0 servers (RFC 6891 §7), and — the ECS-specific rung — retry
*without* the ECS option when a server answers FORMERR (RFC 7871 §7.1).
All of that lives here, once, behind a :class:`RetryPolicy`.

Determinism: backoff jitter is a pure function of (site, server,
attempt) via SHA-256, never an ambient RNG, so retry timing replays
bit-identically at any worker count.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..dnslib import EcsOption, Message, Rcode
from ..net.transport import Network
from ..obs import metrics as _obs_metrics

#: A fresh query for one attempt: ``(edns_ok, ecs_ok) -> Message``.  The
#: executor flips the flags as it walks the downgrade ladder; the callee
#: mints a new message id each call so retried queries are distinct.
QueryFactory = Callable[[bool, bool], Message]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client behaves when the network (or a server) misbehaves.

    ``max_attempts`` budgets timed-out attempts per server (including
    the first).  Protocol downgrades — TCP after truncation, no-ECS and
    no-EDNS after FORMERR — are *extra* rungs outside that budget: they
    respond to explicit server feedback, not silence, and each fires at
    most once per server.
    """

    max_attempts: int = 1
    backoff_base_ms: float = 0.0
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.0
    failover: bool = True
    tcp_on_truncation: bool = True
    retry_without_ecs_on_formerr: bool = False
    retry_without_edns_on_formerr: bool = False

    def max_queries(self, servers: int) -> int:
        """Worst-case wire queries a single execution can issue.

        Per server: ``max_attempts`` budgeted rounds plus one round per
        enabled FORMERR downgrade, each round at most doubled by a TCP
        truncation retry.  The property tests bound chaos runs with this.
        """
        rounds = self.max_attempts \
            + (1 if self.retry_without_ecs_on_formerr else 0) \
            + (1 if self.retry_without_edns_on_formerr else 0)
        per_round = 2 if self.tcp_on_truncation else 1
        reached = max(1, servers) if self.failover else 1
        return reached * rounds * per_round


@dataclass
class RetryOutcome:
    """What one policy-driven execution produced."""

    response: Optional[Message]
    elapsed_ms: float
    attempts: int = 0
    retries: int = 0
    server_ip: Optional[str] = None
    #: ECS option on the final query actually sent (``None`` after a
    #: no-ECS downgrade) — what a cache must key the stored answer on.
    query_ecs: Optional[EcsOption] = None
    ecs_downgraded: bool = False
    edns_downgraded: bool = False
    timed_out: bool = False


def backoff_jitter(site: str, server_ip: str, attempt: int) -> float:
    """Deterministic stand-in for ``uniform(-1, 1)`` jitter.

    Hashing (site, server, attempt) decorrelates concurrent clients'
    retry timing — the point of jitter — without consuming any RNG
    stream, so replay determinism is untouched.
    """
    digest = hashlib.sha256(
        f"repro.faults.backoff:{site}:{server_ip}:{attempt}"
        .encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(2 ** 64) * 2.0 - 1.0


def backoff_delay_ms(policy: RetryPolicy, site: str, server_ip: str,
                     retry_index: int, attempt: int) -> float:
    """Exponential backoff with deterministic jitter, in milliseconds."""
    delay = policy.backoff_base_ms * (policy.backoff_factor ** retry_index)
    if policy.jitter_fraction:
        delay *= 1.0 + policy.jitter_fraction * backoff_jitter(
            site, server_ip, attempt)
    return max(delay, 0.0)


def _note_retry(site: str, reason: str) -> None:
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        reg.counter("repro_retries_total",
                    "Query retries by site and trigger.",
                    ("site", "reason")).inc(1, site, reason)


def _note_ecs_downgrade(site: str) -> None:
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        reg.counter("repro_ecs_downgrades_total",
                    "RFC 7871 section 7.1 no-ECS downgrade retries.",
                    ("site",)).inc(1, site)


def _backoff(net: Network, policy: RetryPolicy, site: str, server_ip: str,
             retry_index: int, attempt: int) -> float:
    delay_ms = backoff_delay_ms(policy, site, server_ip, retry_index,
                                attempt)
    if delay_ms <= 0.0:
        return 0.0
    if net.advance_clock:
        net.clock.advance(delay_ms / 1000.0)
    return delay_ms


def execute_with_retries(net: Network, src_ip: str,
                         servers: Sequence[str],
                         make_query: QueryFactory,
                         policy: RetryPolicy, *,
                         site: str = "client",
                         tcp: bool = False,
                         on_retry: Optional[
                             Callable[[str, str], None]] = None,
                         on_downgrade: Optional[
                             Callable[[str, str], None]] = None
                         ) -> RetryOutcome:
    """Run the full ladder against ``servers`` in order.

    Per server: up to ``max_attempts`` timed-out attempts with backoff
    between them, a TCP retry when an answer comes back truncated, and
    the FORMERR downgrade rungs (drop ECS first, then EDNS entirely).
    Exhausting a server moves to the next (failover); exhausting all of
    them yields a ``timed_out`` outcome.  ``elapsed_ms`` charges every
    wire leg and backoff wait exactly once.

    ``on_retry(reason, server)`` fires for every retry decision
    (reasons: ``timeout``, ``truncation``, ``formerr_noecs``,
    ``formerr_noedns``); ``on_downgrade(kind, server)`` fires on the
    ``ecs``/``edns`` rungs so callers can pin per-server state (e.g. a
    resolver's no-EDNS server set).
    """
    if not servers:
        raise ValueError("execute_with_retries needs at least one server")
    server_list: List[str] = list(servers) if policy.failover \
        else list(servers)[:1]
    total_elapsed = 0.0
    attempts = 0
    retries = 0
    for server_ip in server_list:
        edns_ok = True
        ecs_ok = True
        ecs_downgraded = False
        edns_downgraded = False
        budget = max(1, policy.max_attempts)
        backoffs = 0
        while budget > 0:
            msg = make_query(edns_ok, ecs_ok and edns_ok)
            attempts += 1
            outcome = net.query(src_ip, server_ip, msg, tcp=tcp)
            total_elapsed += outcome.elapsed_ms
            response = outcome.response
            if (response is not None and response.truncated
                    and policy.tcp_on_truncation and not tcp):
                # RFC 1035 section 4.2.1: identical question over TCP.
                retries += 1
                _note_retry(site, "truncation")
                if on_retry is not None:
                    on_retry("truncation", server_ip)
                attempts += 1
                tcp_outcome = net.query(src_ip, server_ip, msg, tcp=True)
                total_elapsed += tcp_outcome.elapsed_ms
                response = tcp_outcome.response
            if response is None:
                budget -= 1
                if budget > 0:
                    retries += 1
                    _note_retry(site, "timeout")
                    if on_retry is not None:
                        on_retry("timeout", server_ip)
                    total_elapsed += _backoff(net, policy, site, server_ip,
                                              backoffs, attempts)
                    backoffs += 1
                continue
            sent_ecs = msg.ecs()
            if response.rcode == Rcode.FORMERR:
                if (sent_ecs is not None and not ecs_downgraded
                        and policy.retry_without_ecs_on_formerr):
                    # RFC 7871 section 7.1: retry without the option.
                    ecs_downgraded = True
                    ecs_ok = False
                    retries += 1
                    _note_retry(site, "formerr_noecs")
                    _note_ecs_downgrade(site)
                    if on_retry is not None:
                        on_retry("formerr_noecs", server_ip)
                    if on_downgrade is not None:
                        on_downgrade("ecs", server_ip)
                    continue
                if (msg.edns is not None and not edns_downgraded
                        and policy.retry_without_edns_on_formerr):
                    # RFC 6891 section 7: pre-EDNS0 server, go plain.
                    edns_downgraded = True
                    edns_ok = False
                    retries += 1
                    _note_retry(site, "formerr_noedns")
                    if on_retry is not None:
                        on_retry("formerr_noedns", server_ip)
                    if on_downgrade is not None:
                        on_downgrade("edns", server_ip)
                    continue
            return RetryOutcome(response, total_elapsed, attempts, retries,
                                server_ip, query_ecs=sent_ecs,
                                ecs_downgraded=ecs_downgraded,
                                edns_downgraded=edns_downgraded)
    return RetryOutcome(None, total_elapsed, attempts, retries, None,
                        timed_out=True)
