"""Persistent worker pools and the spec-dispatch wire protocol.

The engine's original executor created a fresh ``ProcessPoolExecutor``
per :func:`~repro.engine.executor.run_sharded` call and shipped whole
argument tuples — for replay, entire materialized record lists — through
the pickle boundary on every chunk.  ``BENCH_engine.json`` showed the
consequence: ``--workers 4`` ran ~5x *slower* than ``--workers 1``
because serialization dominated the useful work.

This module replaces that with two orthogonal pieces:

* :class:`WorkerPool` — a pool whose worker processes are created once
  per run (``persistent`` mode) and reused by every sharded call of the
  run, or created per batch (``spawn-per-batch`` mode, the legacy
  behavior, kept addressable so the equivalence suite can pin both).

* a **spec dispatch protocol** — each sharded run serializes its *run
  header* (the worker function's import token plus everything shared by
  all shards: builder spec, trace kind, fault plan, …) exactly **once**
  in the parent; every chunk submission carries that same header blob
  plus the per-shard argument blobs.  Workers memoize the decoded header
  by content digest (:data:`_HEADER_CACHE`), so a run deserializes its
  shared state once per worker — not once per chunk, and never once per
  shard.

Workers additionally memoize expensive *derived* state (for example a
dataset materialized from a builder spec) in :data:`_DERIVED_CACHE`,
keyed by the same digest, so a worker that replays eight shards of one
spec builds the dataset a single time.

Everything here is deterministic plumbing: which pool executes a shard,
and how its inputs travel, can never change the shard's output.
"""

from __future__ import annotations

import hashlib
import importlib
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from types import TracebackType
from typing import (Any, Callable, Dict, List, Optional, Tuple, Type,
                    TypeVar)

from ..obs import live as _obs_live

#: The two pool lifecycles the CLI exposes via ``--pool``.
POOL_MODES = ("persistent", "spawn-per-batch")

# ---------------------------------------------------------------------------
# Analyzer introspection hooks.
#
# The whole-program linter (``repro.staticcheck.graph``) reads these
# declarations instead of hard-coding engine internals: which functions
# are worker entrypoints, which call edges cross a pickle boundary, and
# which extra seeds the worker-reachability closure starts from.  The
# declarations live *here*, next to the machinery they describe, so the
# engine and the analyzer cannot drift apart.

#: ``"module:qualname"`` of every function decorated as a worker
#: entrypoint, in registration (import) order.
WORKER_ENTRYPOINTS: List[str] = []

#: Call edges whose arguments are pickled for dispatch.  Entries are
#: ``"module:Qual"`` naming a function, method, or class constructor;
#: an optional ``"#kw1,kw2"`` suffix restricts the check to the named
#: parameters (``run_sharded`` pickles ``shard_args``/``shared`` but
#: its ``count_of`` callback stays in the parent).
PICKLE_BOUNDARIES: Tuple[str, ...] = (
    "repro.engine.sharding:ShardSpec",
    "repro.engine.sharding:ShardSpec.create",
    "repro.engine.pool:encode_header",
    "repro.engine.pool:encode_shard_args",
    "repro.engine.executor:run_sharded#shard_args,shared",
    "repro.obs.live:LiveEmitter.event",
)

#: Extra worker-reachability roots beyond ``@worker_entrypoint`` and the
#: builder registry: methods invoked inside workers by contract.
WORKER_SEEDS: Tuple[str, ...] = (
    "repro.faults.plan:FaultPlan.bind",
)

#: Typed alias so the decorator preserves the wrapped signature.
_F = TypeVar("_F", bound=Callable[..., Any])


def worker_entrypoint(fn: _F) -> _F:
    """Mark ``fn`` as a function the pool dispatches into workers.

    Purely declarative: the function is returned unchanged (no wrapper,
    so ``fn_token`` addressing still works) and its ``module:qualname``
    is recorded in :data:`WORKER_ENTRYPOINTS`.  The static analyzer
    seeds its worker-reachability closure from these declarations.
    """
    token = f"{fn.__module__}:{fn.__qualname__}"
    if token not in WORKER_ENTRYPOINTS:
        WORKER_ENTRYPOINTS.append(token)
    return fn


class PoolError(RuntimeError):
    """Base class for pool dispatch failures."""


class ShardDispatchError(PoolError):
    """A shard's spec could not be serialized for dispatch.

    Raised in the parent *before* anything is submitted, naming the
    offending shard, so a poisoned spec fails fast instead of surfacing
    as an opaque pickling traceback from pool internals mid-run.
    """


class WorkerCrashError(PoolError):
    """A worker process died mid-shard (segfault, ``os._exit``, OOM kill).

    Wraps :class:`concurrent.futures.process.BrokenProcessPool` with the
    task name and the shard range that was in flight, so the failure is
    attributable; the broken executor is discarded, never hung on.
    """


class PoolShutdownError(PoolError):
    """A pool was used after an explicit :meth:`WorkerPool.shutdown`."""


def fn_token(fn: Callable[..., Any]) -> Tuple[str, str]:
    """The importable address of a worker function.

    Workers resolve the function from ``(module, qualname)`` instead of
    unpickling a callable per chunk; only module-level functions qualify
    (the same restriction pickle itself imposes on pool targets).
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        raise ShardDispatchError(
            f"worker function {fn!r} is not addressable as module.qualname; "
            f"shard functions must be module-level")
    return module, qualname


def encode_header(fn: Callable[..., Any], shared: Tuple[Any, ...]) -> bytes:
    """Serialize one run's shared state — called once per sharded run."""
    try:
        return pickle.dumps((fn_token(fn), shared),
                            protocol=pickle.HIGHEST_PROTOCOL)
    except ShardDispatchError:
        raise
    except Exception as exc:
        raise ShardDispatchError(
            f"shared run state for {fn.__qualname__} is not picklable: "
            f"{exc!r}") from exc


def encode_shard_args(args: Tuple[Any, ...], shard_index: int) -> bytes:
    """Serialize one shard's private arguments, failing fast by index."""
    try:
        return pickle.dumps(args, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ShardDispatchError(
            f"shard {shard_index} spec is not picklable: {exc!r}") from exc


# ---------------------------------------------------------------------------
# Worker-side caches.
#
# These module globals live in the *worker* processes (and, for inline
# execution, in the parent — the cache key is a content digest, so a
# stale hit is impossible, only a cheap one).  They are the mechanism
# that turns "one header blob per chunk" into "one deserialization per
# worker".

#: digest -> (fn, shared). Decoded run headers.
_HEADER_CACHE: Dict[bytes, Tuple[Callable[..., Any], Tuple[Any, ...]]] = {}

#: Total header deserializations in this process (test observability).
_HEADER_LOADS = 0

#: digest+tag -> derived object (e.g. a materialized dataset).
_DERIVED_CACHE: Dict[Tuple[bytes, str], Any] = {}

#: Bound on both caches; two run headers is plenty (one per live run).
_CACHE_KEEP = 2


def _evict(cache: Dict[Any, Any]) -> None:
    """Drop oldest entries beyond the bound (dict preserves insert order)."""
    while len(cache) > _CACHE_KEEP:
        cache.pop(next(iter(cache)))


def header_digest(header: bytes) -> bytes:
    """Content key for the worker-side caches."""
    return hashlib.sha256(header).digest()


def decode_header(header: bytes
                  ) -> Tuple[Callable[..., Any], Tuple[Any, ...]]:
    """Decode (memoized) one run header into ``(fn, shared)``."""
    global _HEADER_LOADS
    digest = header_digest(header)
    hit = _HEADER_CACHE.get(digest)
    if hit is not None:
        return hit
    (module, qualname), shared = pickle.loads(header)
    fn = getattr(importlib.import_module(module), qualname)
    _HEADER_LOADS += 1
    _HEADER_CACHE[digest] = (fn, shared)
    _evict(_HEADER_CACHE)
    return fn, shared


def header_loads() -> int:
    """How many run headers this process has deserialized (for tests)."""
    return _HEADER_LOADS


def derived_state(header_digest_key: bytes, tag: str,
                  build: Callable[[], Any]) -> Any:
    """Memoized per-worker derived state for one run.

    ``build()`` runs at most once per (run, tag) in each process;
    subsequent shards of the same run reuse the object.  Used by the
    spec replay path to materialize a builder's dataset once per worker
    instead of once per shard.
    """
    key = (header_digest_key, tag)
    if key not in _DERIVED_CACHE:
        _DERIVED_CACHE[key] = build()
        _evict(_DERIVED_CACHE)
    return _DERIVED_CACHE[key]


# ---------------------------------------------------------------------------
# The pool itself.


class WorkerPool:
    """A process pool with an explicit lifecycle and crash attribution.

    ``persistent`` mode creates the executor lazily on first dispatch
    and reuses it until :meth:`shutdown` — one process spawn per run,
    shared by every sharded call (``repro-ecs all`` runs its whole
    command sequence on one set of workers).  ``spawn-per-batch``
    recreates the executor for every batch, reproducing the legacy
    lifecycle.  Both modes execute identical shard inputs, so outputs
    are byte-identical across modes by construction.
    """

    def __init__(self, workers: int, mode: str = "persistent"):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in POOL_MODES:
            raise ValueError(f"unknown pool mode {mode!r}; "
                             f"expected one of {POOL_MODES}")
        self.workers = workers
        self.mode = mode
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @staticmethod
    def _executor_kwargs() -> Dict[str, Any]:
        """Telemetry plumbing for fresh worker processes.

        When the live plane is active in the parent
        (:mod:`repro.obs.live`), every executor gets an initializer that
        installs a queue-backed emitter in each worker — the side
        channel worker heartbeats ride.  Inactive: no extra kwargs, so
        pools outside a live session are byte-for-byte the old ones.
        """
        init = _obs_live.pool_initializer()
        if init is None:
            return {}
        initializer, initargs = init
        return {"initializer": initializer, "initargs": initargs}

    def _ensure_executor(self, batch_size: int) -> ProcessPoolExecutor:
        if self._closed:
            raise PoolShutdownError("worker pool has been shut down")
        if self.mode == "spawn-per-batch":
            # Caller tears this one down in run_batch's finally.
            return ProcessPoolExecutor(
                max_workers=min(self.workers, max(1, batch_size)),
                **self._executor_kwargs())
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, **self._executor_kwargs())
        return self._executor

    def _discard_broken(self) -> None:
        """Drop a crashed executor; a later batch gets a fresh one."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        """Release the workers.  Idempotent; safe on a never-used pool."""
        self._closed = True
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.shutdown()

    # -- dispatch ------------------------------------------------------------

    def run_batch(self, worker: Callable[..., Any],
                  submissions: List[Tuple[Any, ...]],
                  task: str = "engine") -> List[Any]:
        """Submit ``worker(*submission)`` for each entry; results in order.

        ``worker`` must be a module-level function (it crosses the pickle
        boundary by reference).  A worker-process death surfaces as
        :class:`WorkerCrashError` naming ``task`` and the submission that
        was lost — promptly, never as a hang, because a broken pool fails
        every outstanding future.
        """
        executor = self._ensure_executor(len(submissions))
        try:
            futures = [executor.submit(worker, *submission)
                       for submission in submissions]
            results: List[Any] = []
            for index, future in enumerate(futures):
                try:
                    results.append(future.result())
                except BrokenProcessPool as exc:
                    self._discard_broken()
                    raise WorkerCrashError(
                        f"{task}: worker process died while running "
                        f"batch submission {index}/{len(futures)} "
                        f"(see shard bounds in the traceback context); "
                        f"results were discarded, no partial merge was "
                        f"attempted") from exc
            return results
        finally:
            if self.mode == "spawn-per-batch":
                executor.shutdown(wait=True, cancel_futures=True)


# ---------------------------------------------------------------------------
# The ambient pool slot.  The CLI opens one pool per command and
# activates it here; ``run_sharded`` picks it up so every sharded call
# of the command shares the same workers.  Tests and library callers can
# also pass a pool explicitly.

ACTIVE: Optional[WorkerPool] = None


def activate(pool: Optional[WorkerPool]) -> Optional[WorkerPool]:
    """Install ``pool`` as the ambient pool; returns the previous one."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = pool
    return previous
