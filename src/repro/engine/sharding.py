"""Shard-plan arithmetic: splitting a unit universe across shards.

The shard count is part of an experiment's identity — changing it changes
which random stream generates which unit — while the *worker* count is
pure execution detail.  Keeping the two separate is what makes
``workers=1`` and ``workers=N`` byte-identical.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: Default shard count for every sharded command.  Fixed independently of
#: the worker count so results do not depend on the machine they ran on.
DEFAULT_SHARDS = 8


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-even ``[lo, hi)`` index ranges covering ``total``.

    The first ``total % shards`` shards get one extra unit, so the split
    is deterministic and as balanced as possible.
    """
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    if total < 0:
        raise ValueError("total must be >= 0")
    base, extra = divmod(total, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def stable_bucket(key: str, shards: int) -> int:
    """Map a string key to a shard index, stable across processes.

    Used to partition replay traces by query name so that every cache key
    lands wholly inside one shard (both the plain and the ECS cache key
    start with the qname).
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def partition_by_key(items: Sequence[T], shards: int,
                     key_of: Callable[[T], str]) -> List[List[T]]:
    """Split ``items`` into ``shards`` buckets by ``stable_bucket(key)``.

    Relative order inside each bucket follows the input order, so a
    time-sorted trace yields time-sorted buckets.
    """
    buckets: List[List[T]] = [[] for _ in range(shards)]
    for item in items:
        buckets[stable_bucket(key_of(item), shards)].append(item)
    return buckets
