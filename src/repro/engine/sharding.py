"""Shard-plan arithmetic and the shard-spec builder registry.

The shard count is part of an experiment's identity — changing it changes
which random stream generates which unit — while the *worker* count is
pure execution detail.  Keeping the two separate is what makes
``workers=1`` and ``workers=N`` byte-identical.

This module also defines :class:`ShardSpec` — the compact description of
"which builder, with which constructor arguments" that spec dispatch
ships to pool workers *instead of* builder instances or materialized
record lists.  A spec is a registry name plus a frozen kwargs tuple:
tens of bytes on the wire regardless of dataset size, hashable (so
workers can memoize what they derive from it), and reconstructible on
the other side via :func:`make_builder`.  Every shardable builder
(AllNames / PublicCdn / Cdn / RootTrace) is addressable by name; the
registry stores import paths, not classes, so specs never drag module
graphs through pickle and the engine never imports a builder it does
not use.
"""

from __future__ import annotations

import hashlib
import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: Default shard count for every sharded command.  Fixed independently of
#: the worker count so results do not depend on the machine they ran on.
DEFAULT_SHARDS = 8


def shard_bounds(total: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, near-even ``[lo, hi)`` index ranges covering ``total``.

    The first ``total % shards`` shards get one extra unit, so the split
    is deterministic and as balanced as possible.
    """
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    if total < 0:
        raise ValueError("total must be >= 0")
    base, extra = divmod(total, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def stable_bucket(key: str, shards: int) -> int:
    """Map a string key to a shard index, stable across processes.

    Used to partition replay traces by query name so that every cache key
    lands wholly inside one shard (both the plain and the ECS cache key
    start with the qname).
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


def partition_by_key(items: Sequence[T], shards: int,
                     key_of: Callable[[T], str]) -> List[List[T]]:
    """Split ``items`` into ``shards`` buckets by ``stable_bucket(key)``.

    Relative order inside each bucket follows the input order, so a
    time-sorted trace yields time-sorted buckets.
    """
    buckets: List[List[T]] = [[] for _ in range(shards)]
    for item in items:
        buckets[stable_bucket(key_of(item), shards)].append(item)
    return buckets


def bucket_group_ranges(group_buckets: Sequence[Any],
                        buckets: int) -> List[Tuple[int, int]]:
    """Per-bucket contiguous ``[start, end)`` ranges of a tagged sequence.

    The shard-plan arithmetic behind row-range replay of a pre-bucketed
    columnar trace: ``group_buckets`` is each row group's bucket tag in
    file order, and the result assigns every bucket its contiguous group
    range (possibly empty).  Tags must be ascending and fully cover the
    sequence — an untagged or out-of-order group means the file was not
    produced by the pre-bucketing writer, so this raises rather than
    silently mis-partitioning the replay.
    """
    if buckets <= 0:
        raise ValueError("buckets must be >= 1")
    ranges: List[Tuple[int, int]] = []
    pos = 0
    total = len(group_buckets)
    for bucket in range(buckets):
        start = pos
        while pos < total and group_buckets[pos] == bucket:
            pos += 1
        ranges.append((start, pos))
    if pos != total:
        raise ValueError(f"row groups are not bucket-contiguous for "
                         f"{buckets} buckets (stopped at group {pos} "
                         f"tagged {group_buckets[pos]!r})")
    return ranges


# ---------------------------------------------------------------------------
# The shard-spec builder registry.

#: Registry name -> ``"module:attr"`` import path of the builder class.
#: Names match the CLI's dataset vocabulary where one exists.
BUILDER_REGISTRY: Dict[str, str] = {
    "allnames": "repro.datasets.allnames:AllNamesBuilder",
    "public-cdn": "repro.datasets.public_cdn:PublicCdnBuilder",
    "cdn": "repro.datasets.cdn_dataset:CdnDatasetBuilder",
    "root-trace": "repro.datasets.ditl:RootTraceBuilder",
}


def register_builder(name: str, import_path: str) -> None:
    """Add (or repoint) a builder under ``name``.

    ``import_path`` is ``"package.module:Attr"``.  Tests register
    synthetic builders this way; re-registering an existing name is an
    error unless the path is identical, so two subsystems can never
    silently fight over a spec name.
    """
    if ":" not in import_path:
        raise ValueError(f"import path {import_path!r} must be "
                         f"'module:attr'")
    existing = BUILDER_REGISTRY.get(name)
    if existing is not None and existing != import_path:
        raise ValueError(f"builder {name!r} already registered "
                         f"as {existing!r}")
    BUILDER_REGISTRY[name] = import_path


def registered_builders() -> Tuple[Tuple[str, str], ...]:
    """Sorted ``(name, "module:Class")`` snapshot of the registry.

    The introspection surface the static analyzer (and anything else
    that wants to enumerate spec-dispatchable builders) reads, so the
    registry's storage layout stays private to this module.
    """
    return tuple(sorted(BUILDER_REGISTRY.items()))


def resolve_builder(name: str) -> Callable[..., Any]:
    """The builder class registered under ``name`` (imported on demand)."""
    try:
        import_path = BUILDER_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown builder {name!r}; registered: "
                       f"{sorted(BUILDER_REGISTRY)}") from None
    module_name, _, attr = import_path.partition(":")
    return getattr(importlib.import_module(module_name), attr)


@dataclass(frozen=True)
class ShardSpec:
    """A builder, by name and constructor kwargs — the dispatch currency.

    Frozen and built on tuples so instances hash (worker-side caches key
    on them) and pickle to a few dozen bytes.  ``shard_count`` rides
    along because it is part of the experiment's identity: the same
    builder sharded 8 ways and 16 ways are different experiments.
    """

    builder: str
    kwargs: Tuple[Tuple[str, Any], ...]
    shard_count: int = DEFAULT_SHARDS

    @classmethod
    def create(cls, builder: str, shard_count: int = DEFAULT_SHARDS,
               **kwargs: Any) -> "ShardSpec":
        """Spec from keyword arguments (sorted for a canonical form)."""
        if builder not in BUILDER_REGISTRY:
            raise KeyError(f"unknown builder {builder!r}; registered: "
                           f"{sorted(BUILDER_REGISTRY)}")
        if shard_count <= 0:
            raise ValueError("shard_count must be >= 1")
        return cls(builder, tuple(sorted(kwargs.items())), shard_count)

    def make_builder(self) -> Any:
        """Reconstruct the builder instance this spec describes."""
        return resolve_builder(self.builder)(**dict(self.kwargs))
