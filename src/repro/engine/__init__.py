"""``repro.engine`` — sharded parallel experiment execution.

The engine splits dataset generation and trace replay into a fixed
number of *shards*, each seeded deterministically from the root seed and
the shard index (:func:`derive_seed`), and executes them inline or on a
process pool.  Because shard inputs never depend on the worker count and
shard outputs merge in shard order, ``workers=1`` and ``workers=N``
produce byte-identical merged output — the contract the determinism test
suite enforces.

Dependency-light symbols (seeding, sharding math, the executor) import
eagerly; the generation/replay glue loads lazily via PEP 562 so dataset
builders can import :mod:`repro.engine.seeding` without creating an
import cycle through :mod:`repro.analysis`.
"""

from __future__ import annotations

from typing import Any

from .executor import EngineReport, ShardStats, run_sharded
from .pool import (POOL_MODES, PoolError, PoolShutdownError,
                   ShardDispatchError, WorkerCrashError, WorkerPool)
from .seeding import WORLD_SHARD, derive_seed, world_seed
from .sharding import (BUILDER_REGISTRY, DEFAULT_SHARDS, ShardSpec,
                       partition_by_key, register_builder, resolve_builder,
                       shard_bounds, stable_bucket)

__all__ = [
    "BUILDER_REGISTRY", "DEFAULT_SHARDS", "EngineReport", "POOL_MODES",
    "PoolError", "PoolShutdownError", "ShardDispatchError", "ShardSpec",
    "ShardStats", "WORLD_SHARD", "WorkerCrashError", "WorkerPool",
    "derive_seed", "generate_columnar", "generate_dataset",
    "generate_dataset_spec", "generate_jsonl", "generate_records",
    "generate_records_spec", "partition_by_key", "register_builder",
    "replay_columnar_sharded", "replay_jsonl_sharded", "replay_sharded",
    "replay_spec_sharded", "resolve_builder", "run_sharded",
    "shard_bounds", "stable_bucket", "world_seed",
]

_LAZY = {
    "generate_columnar": "generate",
    "generate_dataset": "generate",
    "generate_dataset_spec": "generate",
    "generate_jsonl": "generate",
    "generate_records": "generate",
    "generate_records_spec": "generate",
    "replay_columnar_sharded": "replay",
    "replay_jsonl_sharded": "replay",
    "replay_sharded": "replay",
    "replay_spec_sharded": "replay",
}


def __getattr__(name: str) -> Any:
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{submodule}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
