"""Sharded trace replay built on mergeable :class:`ReplayPartial`\\ s.

The section 7 cache replays parallelize because both caches — the plain
one keyed by ``(qname, qtype)`` and the ECS one keyed by ``(qname,
qtype, client prefix)`` — partition exactly along query names: no cache
entry is ever shared between two qnames.  Partitioning the trace by a
stable hash of the qname therefore yields shards whose replays are fully
independent; their hit/miss counters add exactly, and peak cache sizes
sum into the aggregate peak (the sum of per-shard peaks, exact whenever
shard occupancies peak together, which the paper's steady-state traces
do).

The shard count is fixed independently of the worker count, so
``workers=1`` and ``workers=N`` produce identical merged results.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.cache_sim import (ReplayPartial, ReplayResult,
                                  merge_partials, replay_partial,
                                  replay_partial_batched)
from .executor import EngineReport, run_sharded
from .sharding import DEFAULT_SHARDS, partition_by_key


def _allnames_client(r):
    return r.client_ip


def _public_cdn_client(r):
    return r.ecs_address


def _scope(r):
    return r.scope


def _ttl(r):
    return r.ttl


#: Accessor trios by trace kind.  Module-level named functions (not
#: lambdas) so shard work units pickle cleanly into pool workers.  Kept
#: as the readable reference; the shard worker itself uses the batched
#: field-name path below.
ACCESSORS: Dict[str, Tuple[Callable, Callable, Callable]] = {
    "allnames": (_allnames_client, _scope, _ttl),
    "public-cdn": (_public_cdn_client, _scope, _ttl),
}

#: Client-address field per trace kind, for the batched fast lane.
CLIENT_FIELDS: Dict[str, str] = {
    "allnames": "client_ip",
    "public-cdn": "ecs_address",
}


def _replay_shard(records: list, kind: str) -> ReplayPartial:
    """Worker entry point: replay one shard of a partitioned trace.

    Uses the batched access path (hoisted attrgetter, no per-record
    callables); counter-identical to ``replay_partial`` over
    ``ACCESSORS[kind]``.
    """
    return replay_partial_batched(records, CLIENT_FIELDS[kind])


def _qname_of(record) -> str:
    return record.qname


def replay_sharded(records: Sequence, kind: str,
                   shards: int = DEFAULT_SHARDS, workers: int = 1,
                   chunk_size: Optional[int] = None
                   ) -> Tuple[ReplayResult, EngineReport]:
    """Replay a trace across shards; returns the merged result.

    ``kind`` selects the record accessors (see :data:`ACCESSORS`).  The
    trace is partitioned by qname so every cache key lives in exactly one
    shard; shard partials merge associatively via
    :func:`repro.analysis.cache_sim.merge_partials`.
    """
    if kind not in CLIENT_FIELDS:
        raise ValueError(f"unknown trace kind {kind!r}; "
                         f"expected one of {sorted(CLIENT_FIELDS)}")
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    buckets = partition_by_key(records, shards, _qname_of)
    shard_args = [(bucket, kind) for bucket in buckets]
    partials, report = run_sharded(
        _replay_shard, shard_args, workers=workers, task=f"replay:{kind}",
        count_of=lambda partial: partial.queries, chunk_size=chunk_size)
    return merge_partials(partials), report
