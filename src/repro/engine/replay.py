"""Sharded trace replay built on mergeable :class:`ReplayPartial`\\ s.

The section 7 cache replays parallelize because both caches — the plain
one keyed by ``(qname, qtype)`` and the ECS one keyed by ``(qname,
qtype, client prefix)`` — partition exactly along query names: no cache
entry is ever shared between two qnames.  Partitioning the trace by a
stable hash of the qname therefore yields shards whose replays are fully
independent; their hit/miss counters add exactly, and peak cache sizes
sum into the aggregate peak (the sum of per-shard peaks, exact whenever
shard occupancies peak together, which the paper's steady-state traces
do).

The shard count is fixed independently of the worker count, so
``workers=1`` and ``workers=N`` produce identical merged results.
"""

from __future__ import annotations

import functools
import json
import os
import re
import shutil
import tempfile
import time
from operator import attrgetter
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    Type, Union)

from ..analysis.cache_sim import (ReplayPartial, ReplayResult,
                                  merge_partials, replay_partial,
                                  replay_partial_batched,
                                  replay_partial_column_groups,
                                  replay_partial_columns)
from ..core.cache import ScopeTracker
from ..datasets.columnar import (ColumnarStore, RowGroupReader,
                                 bucketed_group_ranges, record_row_groups)
from ..datasets.records import AllNamesRecord, PublicCdnRecord
from ..obs import live as _obs_live
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace
from .executor import EngineReport, run_sharded
from .generate import generate_columnar
from .pool import WorkerPool, worker_entrypoint
from .sharding import (DEFAULT_SHARDS, ShardSpec, partition_by_key,
                       stable_bucket)


def _allnames_client(r: Any) -> str:
    return str(r.client_ip)


def _public_cdn_client(r: Any) -> str:
    return str(r.ecs_address)


def _scope(r: Any) -> int:
    return int(r.scope)


def _ttl(r: Any) -> int:
    return int(r.ttl)


#: One field accessor: trace records are plain dataclasses read by name.
Accessor = Callable[[Any], Any]

#: Accessor trios by trace kind.  Module-level named functions (not
#: lambdas) so shard work units pickle cleanly into pool workers.  Kept
#: as the readable reference; the shard worker itself uses the batched
#: field-name path below.
ACCESSORS: Dict[str, Tuple[Accessor, Accessor, Accessor]] = {
    "allnames": (_allnames_client, _scope, _ttl),
    "public-cdn": (_public_cdn_client, _scope, _ttl),
}

#: Client-address field per trace kind, for the batched fast lane.
CLIENT_FIELDS: Dict[str, str] = {
    "allnames": "client_ip",
    "public-cdn": "ecs_address",
}

#: JSONL record class per trace kind (what workers parse lines into).
RECORD_TYPES: Dict[str, Type[Any]] = {
    "allnames": AllNamesRecord,
    "public-cdn": PublicCdnRecord,
}


#: Per-shard ceiling on replay records that emit spans.  The replay
#: traces run to millions of records; tracing each one would swamp any
#: consumer, so a traced replay annotates the shard's leading records and
#: keeps counting the rest (counters are never capped).
TRACED_RECORDS_PER_SHARD = 1000


def _replay_shard(records: List[Any], kind: str) -> ReplayPartial:
    """Worker entry point: replay one shard of a partitioned trace.

    Uses the batched access path (hoisted attrgetter, no per-record
    callables); counter-identical to ``replay_partial`` over
    ``ACCESSORS[kind]``.  Observability is strictly out-of-band: with a
    tracer active the shard runs the span-emitting twin (same tracker
    call sequence, so identical counters); with only a registry active
    the batched loop runs untouched and the partial's aggregate counters
    are recorded after the fact.  The helpers below take the collector
    as a parameter so the None guard lives here, once (RS003).
    """
    tracer = _obs_trace.ACTIVE
    if tracer is not None:
        partial = _replay_shard_traced(tracer, records, kind)
    else:
        partial = replay_partial_batched(records, CLIENT_FIELDS[kind])
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        _record_replay_metrics(reg, kind, partial)
    return partial


def _replay_shard_traced(tracer: _obs_trace.Tracer, records: List[Any],
                         kind: str) -> ReplayPartial:
    """Span-emitting twin of the batched replay loop.

    Issues the exact same :meth:`ScopeTracker.access` sequence as
    :func:`repro.analysis.cache_sim.replay_partial_batched`, so the
    returned partial is counter-identical; the first
    :data:`TRACED_RECORDS_PER_SHARD` records additionally emit a
    ``replay.query`` span carrying both cache verdicts.
    """
    ecs = ScopeTracker(use_ecs=True)
    plain = ScopeTracker(use_ecs=False)
    get = attrgetter("ts", "qname", "qtype", CLIENT_FIELDS[kind],
                     "scope", "ttl")
    ecs_access = ecs.access
    plain_access = plain.access
    for index, r in enumerate(records):
        ts, qname, qtype, client, scope, ttl = get(r)
        if index < TRACED_RECORDS_PER_SHARD:
            with tracer.span("replay.query", kind=kind, ts=ts, qname=qname,
                             qtype=qtype, client=client,
                             scope=scope) as span:
                span.attrs["ecs_hit"] = ecs_access(ts, qname, qtype,
                                                   client, scope, ttl)
                span.attrs["plain_hit"] = plain_access(ts, qname, qtype,
                                                       None, 0, ttl)
        else:
            ecs_access(ts, qname, qtype, client, scope, ttl)
            plain_access(ts, qname, qtype, None, 0, ttl)
    return ReplayPartial(ecs.hits, ecs.misses, plain.hits, plain.misses,
                         ecs.max_size, plain.max_size)


def _record_replay_metrics(reg: _obs_metrics.MetricsRegistry, kind: str,
                           partial: ReplayPartial) -> None:
    """Record one shard's replay outcome as aggregate instruments.

    Called once per shard *after* the hot loop, so metrics collection adds
    a constant per-shard cost rather than a per-record one.  Peak sizes go
    to a sum-mode gauge because disjoint shard caches add (the same
    argument as :class:`ReplayPartial` merging).
    """
    lookups = reg.counter(
        "repro_replay_cache_lookups_total",
        "Replay cache lookups by trace kind, cache flavor and outcome.",
        ("kind", "cache", "outcome"))
    lookups.inc(partial.hits_ecs, kind, "ecs", "hit")
    lookups.inc(partial.misses_ecs, kind, "ecs", "miss")
    lookups.inc(partial.hits_no_ecs, kind, "plain", "hit")
    lookups.inc(partial.misses_no_ecs, kind, "plain", "miss")
    peak = reg.gauge(
        "repro_replay_cache_peak_entries",
        "Summed per-shard peak cache occupancy during replay.",
        ("kind", "cache"), mode="sum")
    peak.inc(partial.max_size_ecs, kind, "ecs")
    peak.inc(partial.max_size_no_ecs, kind, "plain")
    reg.counter("repro_replay_queries_total",
                "Trace records replayed, by trace kind.",
                ("kind",)).inc(partial.queries, kind)


def _qname_of(record: Any) -> str:
    return str(record.qname)


def _check_kind_and_shards(kind: str, shards: int) -> None:
    if kind not in CLIENT_FIELDS:
        raise ValueError(f"unknown trace kind {kind!r}; "
                         f"expected one of {sorted(CLIENT_FIELDS)}")
    if shards <= 0:
        raise ValueError("shards must be >= 1")


def replay_sharded(records: Sequence[Any], kind: str,
                   shards: int = DEFAULT_SHARDS, workers: int = 1,
                   chunk_size: Optional[int] = None,
                   pool: Optional[WorkerPool] = None
                   ) -> Tuple[ReplayResult, EngineReport]:
    """Replay an in-memory trace across shards; the list-based reference.

    ``kind`` selects the record accessors (see :data:`ACCESSORS`).  The
    trace is partitioned by qname so every cache key lives in exactly one
    shard; shard partials merge associatively via
    :func:`repro.analysis.cache_sim.merge_partials`.

    This path ships materialized record lists to the workers — the very
    cost spec dispatch exists to avoid — so it is the readable reference
    the equivalence suite pins :func:`replay_jsonl_sharded` and
    :func:`replay_spec_sharded` against, and the right call only when
    the records already live in the parent.
    """
    _check_kind_and_shards(kind, shards)
    buckets = partition_by_key(records, shards, _qname_of)
    shard_args = [(bucket,) for bucket in buckets]
    partials, report = run_sharded(
        _replay_shard_of_kind, shard_args, workers=workers,
        task=f"replay:{kind}", count_of=lambda partial: partial.queries,
        chunk_size=chunk_size, shared=(kind,), pool=pool)
    return merge_partials(partials), report


@worker_entrypoint
def _replay_shard_of_kind(kind: str, records: List[Any]) -> ReplayPartial:
    """Worker entry point with ``kind`` as shared run state."""
    return _replay_shard(records, kind)


# ---------------------------------------------------------------------------
# Spec dispatch: rebuild the records inside the worker.

#: Fast-path qname extraction from a compact JSONL line.  Falls back to
#: a full JSON parse for escaped or re-ordered lines, so bucketing is
#: correct for any valid JSONL input.
_QNAME_RE = re.compile(r'"qname":"([^"\\]*)"')


def _qname_of_line(line: str) -> str:
    match = _QNAME_RE.search(line)
    if match is not None:
        return match.group(1)
    return str(json.loads(line)["qname"])


def _parse_lines(kind: str, lines: Sequence[str]) -> List[Any]:
    """Materialize one shard's records from its raw JSONL lines."""
    record_type = RECORD_TYPES[kind]
    return [record_type(**json.loads(line)) for line in lines]


@worker_entrypoint
def _replay_lines_shard(kind: str, lines: List[str]) -> ReplayPartial:
    """Worker entry point: parse one shard's JSONL lines, then replay.

    Counter-identical to ``_replay_shard`` over the parsed records —
    parsing location (parent vs worker) can never change replay output.
    """
    return _replay_shard(_parse_lines(kind, lines), kind)


def replay_jsonl_sharded(path: Union[str, Path], kind: str,
                         shards: int = DEFAULT_SHARDS, workers: int = 1,
                         chunk_size: Optional[int] = None,
                         pool: Optional[WorkerPool] = None
                         ) -> Tuple[ReplayResult, EngineReport]:
    """Replay a saved JSONL trace; record parsing happens in the workers.

    The parent streams the file once, routes each *raw line* to its
    qname bucket (a substring scan — no JSON parse), and ships lines.
    Workers parse their own shard's lines into records and replay them,
    so the expensive work — object construction plus the replay itself —
    parallelizes, and the pool boundary carries flat strings instead of
    per-record object pickles.  Byte-identical to
    ``replay_sharded(read_jsonl(path), kind)`` by construction.
    """
    _check_kind_and_shards(kind, shards)
    bucket_start = time.perf_counter()
    buckets: List[List[str]] = [[] for _ in range(shards)]
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                buckets[stable_bucket(_qname_of_line(line), shards)] \
                    .append(line)
    emitter = _obs_live.ACTIVE
    if emitter is not None:
        emitter.event("bucket", task=f"replay:{kind}",
                      records=sum(len(bucket) for bucket in buckets),
                      seconds=time.perf_counter() - bucket_start)
    shard_args = [(bucket,) for bucket in buckets]
    partials, report = run_sharded(
        _replay_lines_shard, shard_args, workers=workers,
        task=f"replay:{kind}", count_of=lambda partial: partial.queries,
        chunk_size=chunk_size, shared=(kind,), pool=pool)
    return merge_partials(partials), report


# ---------------------------------------------------------------------------
# Columnar dispatch: workers mmap one shared file.


@functools.lru_cache(maxsize=4)
def _columnar_store_cached(path: str, size: int,
                           mtime_ns: int) -> ColumnarStore:
    """One mmap'd store per (path, stat identity), per process.

    The per-worker dataset cache of the columnar paths: a worker
    replaying several shards of one trace opens the mapping once, and
    every worker maps the *same* file, so the OS shares the pages —
    where the old spec-dispatch cache held a full per-worker record
    list.  The stat identity keys out stale hits when a path is
    rewritten (tests do this constantly with tmp files); deterministic
    because the store's contents depend only on the file bytes.
    """
    return ColumnarStore.open(path)


def _columnar_store(path: str) -> ColumnarStore:
    stat = os.stat(path)
    return _columnar_store_cached(path, stat.st_size, stat.st_mtime_ns)


@worker_entrypoint
def _replay_columnar_shard(path: str, kind: str, shards: int,
                           bucket: int) -> ReplayPartial:
    """Worker entry point: replay one qname bucket of a mapped trace.

    The work unit crossing the pool boundary is ``(bucket,)`` plus the
    shared ``(path, kind, shards)`` header — never rows.  Row selection
    is the memoized per-store bucket table
    (:meth:`~repro.datasets.columnar.ColumnarStore.row_buckets`), and
    the hot loop is :func:`replay_partial_columns` straight over the
    mapped columns.  With a tracer active the bucket's rows materialize
    through the span-emitting twin instead, keeping traced counters
    identical to every other path.
    """
    store = _columnar_store(path)
    rows = store.row_buckets("qname", shards)[bucket]
    tracer = _obs_trace.ACTIVE
    if tracer is not None:
        partial = _replay_shard_traced(tracer,
                                       [store.record(row) for row in rows],
                                       kind)
    else:
        partial = replay_partial_columns(store, CLIENT_FIELDS[kind],
                                         rows=rows)
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        _record_replay_metrics(reg, kind, partial)
    return partial


@functools.lru_cache(maxsize=4)
def _row_group_reader_cached(path: str, size: int,
                             mtime_ns: int) -> RowGroupReader:
    """One row-group reader per (path, stat identity), per process.

    The bounded-memory twin of :func:`_columnar_store_cached`: the
    reader holds only the mapping and the header, and every worker maps
    the *same* file, so the OS shares its pages.  Group stores are
    issued (and closed) per replay task.
    """
    return RowGroupReader(path)


def _row_group_reader(path: str) -> RowGroupReader:
    stat = os.stat(path)
    return _row_group_reader_cached(path, stat.st_size, stat.st_mtime_ns)


@worker_entrypoint
def _replay_columnar_range(path: str, kind: str, group_start: int,
                           group_end: int) -> ReplayPartial:
    """Worker entry point: replay one group range of a pre-bucketed file.

    The out-of-core work unit: ``(group_start, group_end)`` plus the
    shared ``(path, kind)`` header cross the pool boundary, and the
    worker walks only its own groups' pages — one group's columns
    resident at a time, via
    :func:`repro.analysis.cache_sim.replay_partial_column_groups`,
    which re-maps the group-local dictionary codes onto run-global
    handles so counters are identical to a flat replay of the same
    rows.  With a tracer active the range's rows materialize through
    the span-emitting twin instead, like every other replay path.
    """
    reader = _row_group_reader(path)
    tracer = _obs_trace.ACTIVE
    if tracer is not None:
        records: List[Any] = []
        for index in range(group_start, group_end):
            store = reader.group(index)
            records.extend(store.iter_records())
            store.close()
        partial = _replay_shard_traced(tracer, records, kind)
    else:
        def group_stream() -> Any:
            for index in range(group_start, group_end):
                store = reader.group(index)
                try:
                    yield store
                finally:
                    store.close()

        partial = replay_partial_column_groups(group_stream(),
                                               CLIENT_FIELDS[kind])
    record_row_groups("replayed", reader.schema.name,
                      group_end - group_start)
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        _record_replay_metrics(reg, kind, partial)
    return partial


def replay_columnar_sharded(path: Union[str, Path], kind: str,
                            shards: int = DEFAULT_SHARDS, workers: int = 1,
                            chunk_size: Optional[int] = None,
                            pool: Optional[WorkerPool] = None
                            ) -> Tuple[ReplayResult, EngineReport]:
    """Replay a columnar trace; every worker mmaps the same file.

    The zero-copy counterpart of :func:`replay_jsonl_sharded`: instead
    of routing raw lines through the pool, the parent ships only the
    shared ``(path, kind, shards)`` header and per-shard bucket indices;
    workers map the file (pages shared across processes), bucket rows by
    qname dictionary codes, and run the vectorized column replay.
    Counter-identical to ``replay_sharded(read_columnar(path), kind)``
    for any (workers, pool, chunk size) — the equivalence suite pins it.

    A file pre-bucketed for exactly ``shards`` buckets (see
    :func:`repro.datasets.columnar.prebucket_columnar`) takes the
    out-of-core fast path instead: the parent reads only the tail
    header, dispatches disjoint ``(group_start, group_end)`` row-group
    ranges, and each worker streams its own groups with bounded memory.
    Rows within a bucket keep their file order, so results are
    counter-identical to the flat path over the same trace.
    """
    _check_kind_and_shards(kind, shards)
    resolved = str(Path(path).resolve())
    ranges = bucketed_group_ranges(resolved)
    if ranges is not None:
        if len(ranges) != shards:
            # A pre-bucketed file is *not* globally ts-ordered, so
            # replaying it under any other partition would interleave
            # buckets out of time order and silently skew every TTL
            # decision.  Refuse rather than mis-replay.
            raise ValueError(
                f"{path} is pre-bucketed for {len(ranges)} shards; "
                f"replay it with shards={len(ranges)} or re-bucket it "
                f"for {shards} (repro-ecs convert --bucket-shards)")
        range_args: List[Tuple[Any, ...]] = list(ranges)
        partials, report = run_sharded(
            _replay_columnar_range, range_args, workers=workers,
            task=f"replay:{kind}",
            count_of=lambda partial: partial.queries,
            chunk_size=chunk_size, shared=(resolved, kind), pool=pool)
        return merge_partials(partials), report
    shard_args = [(bucket,) for bucket in range(shards)]
    partials, report = run_sharded(
        _replay_columnar_shard, shard_args, workers=workers,
        task=f"replay:{kind}", count_of=lambda partial: partial.queries,
        chunk_size=chunk_size, shared=(resolved, kind, shards), pool=pool)
    return merge_partials(partials), report


def replay_spec_sharded(spec: ShardSpec, kind: str,
                        shards: int = DEFAULT_SHARDS, workers: int = 1,
                        chunk_size: Optional[int] = None,
                        pool: Optional[WorkerPool] = None
                        ) -> Tuple[ReplayResult, EngineReport]:
    """Replay a builder's dataset without ever materializing it centrally.

    Routed through the columnar substrate: the spec's trace is generated
    once to a temporary columnar file (itself sharded on the same pool,
    workers writing packed segments), then replayed via
    :func:`replay_columnar_sharded` — so the per-worker dataset cache is
    one shared-page mmap of that file instead of the per-worker record
    lists the old spec dispatch materialized.  ``shards`` is the
    *replay* partition count and is independent of ``spec.shard_count``,
    the generation decomposition.  Byte-identical to generating the
    dataset in the parent and calling :func:`replay_sharded` on it.
    """
    _check_kind_and_shards(kind, shards)
    scratch = tempfile.mkdtemp(prefix="repro-replay-spec-")
    try:
        trace = Path(scratch) / f"{spec.builder}.col"
        generate_columnar(spec, trace, schema=kind, workers=workers,
                          chunk_size=chunk_size, pool=pool)
        return replay_columnar_sharded(trace, kind, shards=shards,
                                       workers=workers,
                                       chunk_size=chunk_size, pool=pool)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
