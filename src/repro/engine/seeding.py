"""Deterministic seed derivation for sharded experiments.

Every shard of a sharded generation or replay run needs its own random
stream, and that stream must depend only on the *root seed* and the
*shard index* — never on worker count, scheduling order, or process
identity.  Python's built-in ``hash`` is salted per process, so shards
derive their seeds from a SHA-256 of ``(namespace, root_seed,
shard_index)`` instead: stable across processes, platforms, and runs.
"""

from __future__ import annotations

import hashlib

#: Shard index reserved for "world" structures shared by every shard
#: (client populations, resolver specs, SLD policies).
WORLD_SHARD = -1


def derive_seed(root_seed: int, shard_index: int,
                namespace: str = "shard") -> int:
    """A 64-bit seed for one shard, stable across processes.

    ``namespace`` separates the streams of different builders so that,
    e.g., the All-Names shard 0 and the Public-CDN shard 0 of the same
    experiment never share a random stream.
    """
    payload = f"{namespace}:{root_seed}:{shard_index}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def world_seed(root_seed: int, namespace: str) -> int:
    """The seed for shard-independent 'world' structures of a builder."""
    return derive_seed(root_seed, WORLD_SHARD, namespace)
