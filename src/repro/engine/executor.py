"""Shard executor: inline or pooled, with spec-dispatch and throughput stats.

``run_sharded`` is the single execution primitive of the engine: it maps a
picklable top-level function over a list of shard argument tuples, either
inline (``workers=1``) or on a :class:`~repro.engine.pool.WorkerPool`,
and always returns results **in shard order** regardless of completion
order.  That ordering guarantee — plus the fact that shard inputs never
depend on the worker count — is what makes parallel runs byte-identical
to serial ones.

Dispatch follows the spec protocol from :mod:`repro.engine.pool`: the
run's *shared* state (worker function token plus everything common to
all shards — builder spec, trace kind, fault plan) is serialized once in
the parent and memoized per worker, while each shard ships only its
private arguments.  :class:`ShardStats` records the serialized bytes
each shard actually pushed through the pool boundary, which is the
number the engine bench tracks to keep the ship-the-whole-record-list
pessimization from returning.

Timing is measured inside each worker, so :class:`ShardStats` reflects
real per-shard compute time; the wall clock is measured by the parent.
Stats feed the ``benchmarks/`` throughput tracking and are never part of
rendered experiment reports (they would break determinism comparisons).

Observability rides the same out-of-band channel: when the parent
process has an active :mod:`repro.obs` registry or tracer, each shard
call runs against a *fresh* per-shard registry/tracer (inline execution
swaps the parent's out for the duration, pool workers activate their
own), and the per-shard snapshots come back with the results, merge in
shard order onto :class:`EngineReport`, and fold into the parent's
active collectors.  Because registry merging is associative and
commutative and span IDs are namespaced by shard index, the merged
metrics and span topology are identical for every worker count.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs import live as obs_live
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Span, Tracer
from . import pool as pool_mod
from .pool import (WorkerPool, decode_header, encode_header,
                   encode_shard_args, worker_entrypoint)


@dataclass
class ShardStats:
    """Timing and volume counters for one shard."""

    shard_index: int
    records: int
    seconds: float
    #: Serialized bytes of this shard's private spec as dispatched to the
    #: pool (0 for inline execution, where nothing crosses a boundary).
    payload_bytes: int = 0

    @property
    def records_per_second(self) -> float:
        """Shard throughput; 0.0 for an instantaneous shard."""
        return self.records / self.seconds if self.seconds > 0 else 0.0


@dataclass
class EngineReport:
    """Aggregate throughput of one sharded run.

    ``metrics`` and ``spans`` hold the shard-order merge of the
    per-shard observability snapshots when collection was active in the
    parent (``None``/empty otherwise); they are never rendered into
    experiment reports.
    """

    task: str
    workers: int
    wall_seconds: float
    shards: List[ShardStats] = field(default_factory=list)
    metrics: Optional[MetricsRegistry] = None
    spans: List[Span] = field(default_factory=list)
    spans_dropped: int = 0
    #: How the shards executed: "inline", "persistent" or
    #: "spawn-per-batch".  Execution detail only — never affects output.
    pool_mode: str = "inline"
    #: Serialized bytes of the run's shared header (0 when inline).
    header_bytes: int = 0

    @property
    def total_records(self) -> int:
        return sum(s.records for s in self.shards)

    @property
    def records_per_second(self) -> float:
        """End-to-end throughput against the parent's wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_records / self.wall_seconds

    @property
    def payload_bytes(self) -> int:
        """Serialized shard-spec bytes shipped to workers, all shards."""
        return sum(s.payload_bytes for s in self.shards)

    @property
    def payload_bytes_per_shard(self) -> float:
        """Mean serialized bytes per shard crossing the pool boundary."""
        if not self.shards:
            return 0.0
        return self.payload_bytes / len(self.shards)

    def summary(self) -> str:
        """One-line status suitable for stderr/progress notes."""
        return (f"[engine] {self.task}: {self.total_records} records, "
                f"{len(self.shards)} shards x {self.workers} worker(s), "
                f"{self.wall_seconds:.2f}s wall "
                f"({self.records_per_second:,.0f} rec/s)")

    def report(self) -> str:
        """Per-shard breakdown (for benchmarks and debugging)."""
        lines = [self.summary()]
        for s in self.shards:
            lines.append(f"  shard {s.shard_index:2d}: {s.records:8d} records "
                         f"in {s.seconds:7.3f}s "
                         f"({s.records_per_second:,.0f} rec/s)")
        return "\n".join(lines)


#: One shard's outcome: (result, seconds, registry | None, spans | None,
#: dropped span count).
_Outcome = Tuple[Any, float, Optional[MetricsRegistry],
                 Optional[List[Span]], int]


def _live_record_count(result: Any) -> int:
    """Best-effort record count for a shard's heartbeat.

    The parent's ``count_of`` extractor is not picklable into workers,
    so heartbeats use a structural guess: sized results report their
    length, integer results (the JSONL/columnar writers return counts)
    report themselves, partials expose ``queries`` or ``records``.  Only
    the live plane reads this — :class:`ShardStats` keeps using
    ``count_of``.
    """
    if hasattr(result, "__len__"):
        return len(result)
    if isinstance(result, int):
        return result
    for attr in ("queries", "records"):
        value = getattr(result, attr, None)
        if isinstance(value, int):
            return value
    return 0


def _observed_call(fn: Callable[..., Any], args: Tuple[Any, ...],
                   shard_index: int, capture_metrics: bool,
                   capture_traces: bool, task: str = "engine") -> _Outcome:
    """Run ``fn(*args)`` timed, against fresh per-shard obs collectors.

    Swapping (rather than merely activating) the registry/tracer makes
    inline and pooled execution indistinguishable to the instrumented
    code: either way the shard writes into its own collectors, which are
    snapshotted here and merged by the parent in shard order.

    With a live emitter active, the shard's boundaries stream out as
    ``shard_start``/``shard_end`` heartbeats; the end beat carries the
    shard's registry snapshot so scrapes see counters grow mid-run.
    Heartbeats are fire-and-forget side traffic — the returned outcome
    (and therefore every experiment output) is identical with the live
    plane on or off.
    """
    emitter = obs_live.ACTIVE
    if emitter is not None:
        emitter.shard_start(task, shard_index)
    registry: Optional[MetricsRegistry] = None
    spans: Optional[List[Span]] = None
    dropped = 0
    previous_registry = (obs_metrics.swap(MetricsRegistry())
                         if capture_metrics else None)
    tracer = Tracer(id_prefix=f"s{shard_index}") if capture_traces else None
    previous_tracer = obs_trace.swap(tracer) if capture_traces else None
    start = time.perf_counter()
    try:
        result = fn(*args)
    finally:
        seconds = time.perf_counter() - start
        if capture_metrics:
            registry = obs_metrics.swap(previous_registry)
        if tracer is not None:
            obs_trace.swap(previous_tracer)
            spans, dropped = tracer.spans, tracer.dropped
    if emitter is not None:
        emitter.shard_end(task, shard_index,
                          records=_live_record_count(result),
                          seconds=seconds, metrics=registry)
    return result, seconds, registry, spans, dropped


@worker_entrypoint
def _run_header_chunk(header: bytes, args_blobs: Sequence[bytes],
                      base_index: int, capture_metrics: bool,
                      capture_traces: bool,
                      task: str = "engine") -> List[_Outcome]:
    """Worker entry point: run several consecutive shards of one run.

    The run header (function token + shared state) is decoded at most
    once per worker process — :func:`repro.engine.pool.decode_header`
    memoizes by content digest — so a run with many chunks pays one
    shared-state deserialization per worker, not one per chunk.  Each
    shard is still timed (and observed) individually so per-shard stats
    stay meaningful.  A fresh header decode emits a ``header_decode``
    heartbeat, making per-worker deserialization visible on timelines.
    """
    loads_before = pool_mod.header_loads()
    fn, shared = decode_header(header)
    emitter = obs_live.ACTIVE
    if emitter is not None and pool_mod.header_loads() != loads_before:
        emitter.event("header_decode", task=task, bytes=len(header))
    outcomes: List[_Outcome] = []
    for offset, blob in enumerate(args_blobs):
        args = pickle.loads(blob)
        outcomes.append(_observed_call(fn, tuple(shared) + tuple(args),
                                       base_index + offset,
                                       capture_metrics, capture_traces,
                                       task))
    return outcomes


def _timed_call(fn: Callable[..., Any],
                args: Tuple[Any, ...]) -> Tuple[Any, float]:
    """Run ``fn(*args)`` and measure it (no observability capture)."""
    result, seconds, _, _, _ = _observed_call(fn, args, 0, False, False)
    return result, seconds


def _chunk_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Consecutive ``[lo, hi)`` slices of length <= ``chunk_size``."""
    return [(lo, min(lo + chunk_size, total))
            for lo in range(0, total, chunk_size)]


def _resolve_pool(pool: Optional[WorkerPool],
                  workers: int) -> Tuple[WorkerPool, bool]:
    """The pool a parallel run executes on, and whether it is ephemeral.

    Precedence: an explicitly passed pool, then the ambient
    :data:`repro.engine.pool.ACTIVE` pool (the CLI installs one per
    command), then a throwaway spawn-per-batch pool reproducing the
    legacy per-call lifecycle for direct library callers.
    """
    if pool is not None:
        return pool, False
    ambient = pool_mod.ACTIVE
    if ambient is not None:
        return ambient, False
    return WorkerPool(workers, mode="spawn-per-batch"), True


def run_sharded(fn: Callable[..., Any],
                shard_args: Sequence[Tuple[Any, ...]],
                workers: int = 1, task: str = "engine",
                count_of: Optional[Callable[[Any], int]] = None,
                chunk_size: Optional[int] = None,
                shared: Tuple[Any, ...] = (),
                pool: Optional[WorkerPool] = None
                ) -> Tuple[List[Any], EngineReport]:
    """Run ``fn(*shared, *args)`` for every argument tuple, one per shard.

    ``fn`` must be a module-level (picklable) function.  With
    ``workers > 1`` the calls run on a worker pool (an explicit ``pool``,
    the ambient CLI pool, or a throwaway one); results are still
    collected in shard order, so output never depends on scheduling.
    ``count_of`` extracts a record count from each result for the stats
    (defaults to ``len`` where available).

    ``shared`` holds the arguments common to every shard — the builder
    spec, trace kind, fault plan.  It is serialized once per run and
    memoized per worker, so per-shard dispatch cost is the private
    ``args`` tuple alone; keep per-shard tuples down to indices and
    bounds and the pool boundary carries O(shards) small objects total.

    ``chunk_size`` batches that many consecutive shards per pool
    submission to cut round-trips when shards far outnumber workers;
    ``None`` picks a size that keeps every worker busy with ~4
    submissions.  Chunking is pure dispatch — shard inputs, per-shard
    seeding and result order are unchanged, so outputs stay byte-identical
    for any (workers, chunk_size, pool mode) combination.
    """
    workers = max(1, workers)
    capture_metrics = obs_metrics.ACTIVE is not None
    capture_traces = obs_trace.ACTIVE is not None
    emitter = obs_live.ACTIVE
    if emitter is not None:
        emitter.run_start(task, shards=len(shard_args))
    wall_start = time.perf_counter()
    outcomes: List[_Outcome] = []
    payload_bytes: List[int] = [0] * len(shard_args)
    header_bytes = 0
    pool_mode = "inline"
    if workers == 1 or len(shard_args) <= 1:
        for index, args in enumerate(shard_args):
            outcomes.append(_observed_call(fn, tuple(shared) + tuple(args),
                                           index, capture_metrics,
                                           capture_traces, task))
    else:
        header = encode_header(fn, tuple(shared))
        header_bytes = len(header)
        blobs = [encode_shard_args(tuple(args), index)
                 for index, args in enumerate(shard_args)]
        payload_bytes = [len(blob) for blob in blobs]
        if chunk_size is None:
            chunk_size = max(1, len(shard_args) // (workers * 4))
        bounds = _chunk_bounds(len(shard_args), max(1, chunk_size))
        run_pool, ephemeral = _resolve_pool(pool, workers)
        pool_mode = run_pool.mode
        submissions = [(header, blobs[lo:hi], lo,
                        capture_metrics, capture_traces, task)
                       for lo, hi in bounds]
        if emitter is not None:
            for position, (lo, hi) in enumerate(bounds):
                emitter.dispatch(task, shard=lo, shards=hi - lo,
                                 payload_bytes=sum(payload_bytes[lo:hi]),
                                 queue_depth=len(bounds) - position)
        try:
            for chunk in run_pool.run_batch(_run_header_chunk, submissions,
                                            task=task):
                outcomes.extend(chunk)
        finally:
            if ephemeral:
                run_pool.shutdown()
    wall = time.perf_counter() - wall_start

    results: List[Any] = []
    stats: List[ShardStats] = []
    for index, (result, seconds, _, _, _) in enumerate(outcomes):
        if count_of is not None:
            count = count_of(result)
        elif hasattr(result, "__len__"):
            count = len(result)
        else:
            count = 0
        results.append(result)
        stats.append(ShardStats(index, count, seconds,
                                payload_bytes[index]))
    report = EngineReport(task, workers, wall, stats,
                          pool_mode=pool_mode, header_bytes=header_bytes)
    _fold_observability(report, outcomes, capture_metrics, capture_traces)
    if emitter is not None:
        emitter.run_end(task, records=sum(s.records for s in stats))
    return results, report


def _fold_observability(report: EngineReport, outcomes: Sequence[_Outcome],
                        capture_metrics: bool, capture_traces: bool) -> None:
    """Merge per-shard snapshots in shard order; feed the parent's obs."""
    if capture_metrics:
        merged = MetricsRegistry()
        for _, _, registry, _, _ in outcomes:
            if registry is not None:
                merged.merge_from(registry)
        report.metrics = merged
        parent = obs_metrics.ACTIVE
        if parent is not None:
            parent.merge_from(merged)
    if capture_traces:
        all_spans: List[Span] = []
        dropped_total = 0
        for _, _, _, spans, dropped in outcomes:
            if spans:
                all_spans.extend(spans)
            dropped_total += dropped
        report.spans = all_spans
        report.spans_dropped = dropped_total
        parent_tracer = obs_trace.ACTIVE
        if parent_tracer is not None:
            parent_tracer.absorb(all_spans, dropped_total)
