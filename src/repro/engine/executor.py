"""Process-pool shard executor with per-shard throughput counters.

``run_sharded`` is the single execution primitive of the engine: it maps a
picklable top-level function over a list of shard argument tuples, either
inline (``workers=1``) or on a ``concurrent.futures`` process pool, and
always returns results **in shard order** regardless of completion order.
That ordering guarantee — plus the fact that shard inputs never depend on
the worker count — is what makes parallel runs byte-identical to serial
ones.

Timing is measured inside each worker, so :class:`ShardStats` reflects
real per-shard compute time; the wall clock is measured by the parent.
Stats feed the ``benchmarks/`` throughput tracking and are never part of
rendered experiment reports (they would break determinism comparisons).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple


@dataclass
class ShardStats:
    """Timing and volume counters for one shard."""

    shard_index: int
    records: int
    seconds: float

    @property
    def records_per_second(self) -> float:
        """Shard throughput; 0.0 for an instantaneous shard."""
        return self.records / self.seconds if self.seconds > 0 else 0.0


@dataclass
class EngineReport:
    """Aggregate throughput of one sharded run."""

    task: str
    workers: int
    wall_seconds: float
    shards: List[ShardStats] = field(default_factory=list)

    @property
    def total_records(self) -> int:
        return sum(s.records for s in self.shards)

    @property
    def records_per_second(self) -> float:
        """End-to-end throughput against the parent's wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_records / self.wall_seconds

    def summary(self) -> str:
        """One-line status suitable for stderr/progress notes."""
        return (f"[engine] {self.task}: {self.total_records} records, "
                f"{len(self.shards)} shards x {self.workers} worker(s), "
                f"{self.wall_seconds:.2f}s wall "
                f"({self.records_per_second:,.0f} rec/s)")

    def report(self) -> str:
        """Per-shard breakdown (for benchmarks and debugging)."""
        lines = [self.summary()]
        for s in self.shards:
            lines.append(f"  shard {s.shard_index:2d}: {s.records:8d} records "
                         f"in {s.seconds:7.3f}s "
                         f"({s.records_per_second:,.0f} rec/s)")
        return "\n".join(lines)


def _timed_call(fn: Callable[..., Any], args: Tuple) -> Tuple[Any, float]:
    """Run ``fn(*args)`` and measure it; executes inside the worker."""
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def _timed_call_chunk(fn: Callable[..., Any],
                      chunk: Sequence[Tuple]) -> List[Tuple[Any, float]]:
    """Run several consecutive shards in one worker dispatch.

    Batching shard calls into one submission pickles ``fn`` and the pool
    bookkeeping once per chunk instead of once per shard; each shard is
    still timed individually so per-shard stats stay meaningful.
    """
    return [_timed_call(fn, args) for args in chunk]


def _chunk_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Consecutive ``[lo, hi)`` slices of length <= ``chunk_size``."""
    return [(lo, min(lo + chunk_size, total))
            for lo in range(0, total, chunk_size)]


def run_sharded(fn: Callable[..., Any], shard_args: Sequence[Tuple],
                workers: int = 1, task: str = "engine",
                count_of: Optional[Callable[[Any], int]] = None,
                chunk_size: Optional[int] = None
                ) -> Tuple[List[Any], EngineReport]:
    """Run ``fn`` over every argument tuple, one call per shard.

    ``fn`` must be a module-level (picklable) function.  With
    ``workers > 1`` the calls run on a process pool; results are still
    collected in shard order, so output never depends on scheduling.
    ``count_of`` extracts a record count from each result for the stats
    (defaults to ``len`` where available).

    ``chunk_size`` batches that many consecutive shards per pool
    submission to cut pickling overhead when shards far outnumber
    workers; ``None`` picks a size that keeps every worker busy with ~4
    submissions.  Chunking is pure dispatch — shard inputs, per-shard
    seeding and result order are unchanged, so outputs stay byte-identical
    for any (workers, chunk_size) combination.
    """
    workers = max(1, workers)
    wall_start = time.perf_counter()
    outcomes: List[Tuple[Any, float]] = []
    if workers == 1 or len(shard_args) <= 1:
        for args in shard_args:
            outcomes.append(_timed_call(fn, args))
    else:
        if chunk_size is None:
            chunk_size = max(1, len(shard_args) // (workers * 4))
        bounds = _chunk_bounds(len(shard_args), max(1, chunk_size))
        with ProcessPoolExecutor(
                max_workers=min(workers, len(bounds))) as pool:
            futures = [pool.submit(_timed_call_chunk, fn,
                                   list(shard_args[lo:hi]))
                       for lo, hi in bounds]
            for future in futures:
                outcomes.extend(future.result())
    wall = time.perf_counter() - wall_start

    results: List[Any] = []
    stats: List[ShardStats] = []
    for index, (result, seconds) in enumerate(outcomes):
        if count_of is not None:
            count = count_of(result)
        elif hasattr(result, "__len__"):
            count = len(result)
        else:
            count = 0
        results.append(result)
        stats.append(ShardStats(index, count, seconds))
    return results, EngineReport(task, workers, wall, stats)
