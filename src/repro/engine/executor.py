"""Process-pool shard executor with per-shard throughput counters.

``run_sharded`` is the single execution primitive of the engine: it maps a
picklable top-level function over a list of shard argument tuples, either
inline (``workers=1``) or on a ``concurrent.futures`` process pool, and
always returns results **in shard order** regardless of completion order.
That ordering guarantee — plus the fact that shard inputs never depend on
the worker count — is what makes parallel runs byte-identical to serial
ones.

Timing is measured inside each worker, so :class:`ShardStats` reflects
real per-shard compute time; the wall clock is measured by the parent.
Stats feed the ``benchmarks/`` throughput tracking and are never part of
rendered experiment reports (they would break determinism comparisons).

Observability rides the same out-of-band channel: when the parent
process has an active :mod:`repro.obs` registry or tracer, each shard
call runs against a *fresh* per-shard registry/tracer (inline execution
swaps the parent's out for the duration, pool workers activate their
own), and the per-shard snapshots come back with the results, merge in
shard order onto :class:`EngineReport`, and fold into the parent's
active collectors.  Because registry merging is associative and
commutative and span IDs are namespaced by shard index, the merged
metrics and span topology are identical for every worker count.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Span, Tracer


@dataclass
class ShardStats:
    """Timing and volume counters for one shard."""

    shard_index: int
    records: int
    seconds: float

    @property
    def records_per_second(self) -> float:
        """Shard throughput; 0.0 for an instantaneous shard."""
        return self.records / self.seconds if self.seconds > 0 else 0.0


@dataclass
class EngineReport:
    """Aggregate throughput of one sharded run.

    ``metrics`` and ``spans`` hold the shard-order merge of the
    per-shard observability snapshots when collection was active in the
    parent (``None``/empty otherwise); they are never rendered into
    experiment reports.
    """

    task: str
    workers: int
    wall_seconds: float
    shards: List[ShardStats] = field(default_factory=list)
    metrics: Optional[MetricsRegistry] = None
    spans: List[Span] = field(default_factory=list)
    spans_dropped: int = 0

    @property
    def total_records(self) -> int:
        return sum(s.records for s in self.shards)

    @property
    def records_per_second(self) -> float:
        """End-to-end throughput against the parent's wall clock."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_records / self.wall_seconds

    def summary(self) -> str:
        """One-line status suitable for stderr/progress notes."""
        return (f"[engine] {self.task}: {self.total_records} records, "
                f"{len(self.shards)} shards x {self.workers} worker(s), "
                f"{self.wall_seconds:.2f}s wall "
                f"({self.records_per_second:,.0f} rec/s)")

    def report(self) -> str:
        """Per-shard breakdown (for benchmarks and debugging)."""
        lines = [self.summary()]
        for s in self.shards:
            lines.append(f"  shard {s.shard_index:2d}: {s.records:8d} records "
                         f"in {s.seconds:7.3f}s "
                         f"({s.records_per_second:,.0f} rec/s)")
        return "\n".join(lines)


#: One shard's outcome: (result, seconds, registry | None, spans | None,
#: dropped span count).
_Outcome = Tuple[Any, float, Optional[MetricsRegistry],
                 Optional[List[Span]], int]


def _observed_call(fn: Callable[..., Any], args: Tuple[Any, ...],
                   shard_index: int,
                   capture_metrics: bool, capture_traces: bool) -> _Outcome:
    """Run ``fn(*args)`` timed, against fresh per-shard obs collectors.

    Swapping (rather than merely activating) the registry/tracer makes
    inline and pooled execution indistinguishable to the instrumented
    code: either way the shard writes into its own collectors, which are
    snapshotted here and merged by the parent in shard order.
    """
    registry: Optional[MetricsRegistry] = None
    spans: Optional[List[Span]] = None
    dropped = 0
    previous_registry = (obs_metrics.swap(MetricsRegistry())
                         if capture_metrics else None)
    tracer = Tracer(id_prefix=f"s{shard_index}") if capture_traces else None
    previous_tracer = obs_trace.swap(tracer) if capture_traces else None
    start = time.perf_counter()
    try:
        result = fn(*args)
    finally:
        seconds = time.perf_counter() - start
        if capture_metrics:
            registry = obs_metrics.swap(previous_registry)
        if tracer is not None:
            obs_trace.swap(previous_tracer)
            spans, dropped = tracer.spans, tracer.dropped
    return result, seconds, registry, spans, dropped


def _observed_call_chunk(fn: Callable[..., Any],
                         chunk: Sequence[Tuple[Any, ...]],
                         base_index: int, capture_metrics: bool,
                         capture_traces: bool) -> List[_Outcome]:
    """Run several consecutive shards in one worker dispatch.

    Batching shard calls into one submission pickles ``fn`` and the pool
    bookkeeping once per chunk instead of once per shard; each shard is
    still timed (and observed) individually so per-shard stats stay
    meaningful.
    """
    return [_observed_call(fn, args, base_index + offset,
                           capture_metrics, capture_traces)
            for offset, args in enumerate(chunk)]


def _timed_call(fn: Callable[..., Any],
                args: Tuple[Any, ...]) -> Tuple[Any, float]:
    """Run ``fn(*args)`` and measure it (no observability capture)."""
    result, seconds, _, _, _ = _observed_call(fn, args, 0, False, False)
    return result, seconds


def _chunk_bounds(total: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Consecutive ``[lo, hi)`` slices of length <= ``chunk_size``."""
    return [(lo, min(lo + chunk_size, total))
            for lo in range(0, total, chunk_size)]


def run_sharded(fn: Callable[..., Any],
                shard_args: Sequence[Tuple[Any, ...]],
                workers: int = 1, task: str = "engine",
                count_of: Optional[Callable[[Any], int]] = None,
                chunk_size: Optional[int] = None
                ) -> Tuple[List[Any], EngineReport]:
    """Run ``fn`` over every argument tuple, one call per shard.

    ``fn`` must be a module-level (picklable) function.  With
    ``workers > 1`` the calls run on a process pool; results are still
    collected in shard order, so output never depends on scheduling.
    ``count_of`` extracts a record count from each result for the stats
    (defaults to ``len`` where available).

    ``chunk_size`` batches that many consecutive shards per pool
    submission to cut pickling overhead when shards far outnumber
    workers; ``None`` picks a size that keeps every worker busy with ~4
    submissions.  Chunking is pure dispatch — shard inputs, per-shard
    seeding and result order are unchanged, so outputs stay byte-identical
    for any (workers, chunk_size) combination.
    """
    workers = max(1, workers)
    capture_metrics = obs_metrics.ACTIVE is not None
    capture_traces = obs_trace.ACTIVE is not None
    wall_start = time.perf_counter()
    outcomes: List[_Outcome] = []
    if workers == 1 or len(shard_args) <= 1:
        for index, args in enumerate(shard_args):
            outcomes.append(_observed_call(fn, args, index,
                                           capture_metrics, capture_traces))
    else:
        if chunk_size is None:
            chunk_size = max(1, len(shard_args) // (workers * 4))
        bounds = _chunk_bounds(len(shard_args), max(1, chunk_size))
        with ProcessPoolExecutor(
                max_workers=min(workers, len(bounds))) as pool:
            futures = [pool.submit(_observed_call_chunk, fn,
                                   list(shard_args[lo:hi]), lo,
                                   capture_metrics, capture_traces)
                       for lo, hi in bounds]
            for future in futures:
                outcomes.extend(future.result())
    wall = time.perf_counter() - wall_start

    results: List[Any] = []
    stats: List[ShardStats] = []
    for index, (result, seconds, _, _, _) in enumerate(outcomes):
        if count_of is not None:
            count = count_of(result)
        elif hasattr(result, "__len__"):
            count = len(result)
        else:
            count = 0
        results.append(result)
        stats.append(ShardStats(index, count, seconds))
    report = EngineReport(task, workers, wall, stats)
    _fold_observability(report, outcomes, capture_metrics, capture_traces)
    return results, report


def _fold_observability(report: EngineReport, outcomes: Sequence[_Outcome],
                        capture_metrics: bool, capture_traces: bool) -> None:
    """Merge per-shard snapshots in shard order; feed the parent's obs."""
    if capture_metrics:
        merged = MetricsRegistry()
        for _, _, registry, _, _ in outcomes:
            if registry is not None:
                merged.merge_from(registry)
        report.metrics = merged
        parent = obs_metrics.ACTIVE
        if parent is not None:
            parent.merge_from(merged)
    if capture_traces:
        all_spans: List[Span] = []
        dropped_total = 0
        for _, _, _, spans, dropped in outcomes:
            if spans:
                all_spans.extend(spans)
            dropped_total += dropped
        report.spans = all_spans
        report.spans_dropped = dropped_total
        parent_tracer = obs_trace.ACTIVE
        if parent_tracer is not None:
            parent_tracer.absorb(all_spans, dropped_total)
