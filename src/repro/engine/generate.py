"""Sharded dataset generation: builder-object and shard-spec dispatch.

A *shardable builder* exposes three methods::

    shard_units() -> int                      # size of the unit universe
    build_shard(index, count) -> List[record] # one shard, ts-sorted
    assemble(shard_lists) -> dataset          # order-stable merge + wrap

``build_shard`` must depend only on the builder's parameters and the
shard index (its random stream is seeded via
:func:`repro.engine.seeding.derive_seed`), never on which worker runs it.
The engine then guarantees the merged output is identical for any worker
count, because shards are generated from fixed seeds and merged in shard
order.

Two dispatch flavors coexist:

* the **builder-object** path (:func:`generate_records` /
  :func:`generate_dataset`) ships the builder instance as the run's
  shared state — serialized once per run, not once per shard — and
  returns materialized record lists to the parent.  It is the readable
  reference the equivalence suite pins the spec path against.

* the **spec** path (:func:`generate_records_spec` /
  :func:`generate_dataset_spec` / :func:`generate_jsonl`) ships a
  :class:`~repro.engine.sharding.ShardSpec` (builder name + kwargs, tens
  of bytes) and rebuilds the builder inside the worker.
  :func:`generate_jsonl` goes one step further: each worker writes its
  shard's records to the conventional ``<file>.shardNN`` sibling itself
  and returns only a count, so for the ``generate`` command *nothing*
  record-shaped crosses the pool boundary in either direction — the
  parent just k-way-merges the shard files.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, List, Optional, Protocol, Sequence, Tuple, Union

from ..datasets.columnar import (DEFAULT_ROW_GROUP_ROWS,
                                 merge_columnar_shards,
                                 write_columnar_sorted,
                                 write_columnar_stream)
from ..datasets.records import merge_jsonl_shards, shard_path, write_jsonl
from ..obs import live as _obs_live
from ..obs import metrics as _obs_metrics
from .executor import EngineReport, run_sharded
from .pool import WorkerPool, worker_entrypoint
from .sharding import DEFAULT_SHARDS, ShardSpec


class ShardableBuilder(Protocol):
    """Structural contract for builders the engine can shard.

    Any dataset builder with these three methods (all of
    ``repro.datasets``'s builders qualify) can be handed to
    :func:`generate_records` / :func:`generate_dataset`; no inheritance
    is required.
    """

    def shard_units(self) -> int:
        """Size of the unit universe being divided across shards."""
        ...

    def build_shard(self, shard_index: int,
                    shard_count: int) -> List[Any]:
        """One shard's records, ts-sorted, seeded only by the index."""
        ...

    def assemble(self, shard_lists: Sequence[List[Any]]) -> Any:
        """Order-stable merge of the shard lists into the dataset."""
        ...


def _count_generated_rows(builder: ShardableBuilder, count: int) -> None:
    """Record the per-shard generation counter (all dispatch paths)."""
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        reg.counter("repro_generate_records_total",
                    "Records produced by sharded generation, per builder.",
                    ("builder",)).inc(count, type(builder).__name__)


def _count_generated(builder: ShardableBuilder,
                     records: List[Any]) -> List[Any]:
    """List-returning convenience over :func:`_count_generated_rows`."""
    _count_generated_rows(builder, len(records))
    return records


@worker_entrypoint
def _build_shard(builder: ShardableBuilder, shard_index: int,
                 shard_count: int) -> List[Any]:
    """Worker entry point; module-level so it pickles by reference."""
    return _count_generated(builder,
                            builder.build_shard(shard_index, shard_count))


@worker_entrypoint
def _build_shard_from_spec(spec: ShardSpec, shard_index: int) -> List[Any]:
    """Worker entry point for spec dispatch: rebuild, then build."""
    builder = spec.make_builder()
    return _count_generated(builder,
                            builder.build_shard(shard_index,
                                                spec.shard_count))


@worker_entrypoint
def _write_shard_from_spec(spec: ShardSpec, out_base: str,
                           shard_index: int) -> int:
    """Worker entry point: build one shard and write its JSONL file.

    Returns only the record count — the shard's bytes stay on disk at
    :func:`repro.datasets.records.shard_path`, where the parent's k-way
    merge picks them up.
    """
    records = _build_shard_from_spec(spec, shard_index)
    return write_jsonl(records, shard_path(out_base, shard_index))


@worker_entrypoint
def _write_columnar_shard_from_spec(spec: ShardSpec, out_base: str,
                                    schema: str,
                                    row_group_rows: Optional[int],
                                    shard_index: int) -> int:
    """Worker entry point: stream one shard into a columnar sibling.

    The columnar twin of :func:`_write_shard_from_spec`: only the count
    crosses the pool boundary; the packed segments wait on disk for the
    parent's merge.  Shard files are always the v2 row-group layout so
    worker memory stays bounded by one row group: a builder whose
    ``iter_shard`` emits in global ts order streams straight into
    :func:`~repro.datasets.columnar.write_columnar_stream`; other
    builders stream through the external sort
    (:func:`~repro.datasets.columnar.write_columnar_sorted`), whose
    output is exactly the stable sort ``build_shard`` performs.
    Builders without a generator path fall back to the materialized
    ``build_shard`` list.
    """
    builder = spec.make_builder()
    path = shard_path(out_base, shard_index)
    rows_per_group = (DEFAULT_ROW_GROUP_ROWS if row_group_rows is None
                      else row_group_rows)
    iter_shard = getattr(builder, "iter_shard", None)
    if iter_shard is None:
        count = write_columnar_stream(
            builder.build_shard(shard_index, spec.shard_count), path,
            schema, rows_per_group)
    elif getattr(builder, "ITER_SHARD_SORTED", False):
        count = write_columnar_stream(
            iter_shard(shard_index, spec.shard_count), path, schema,
            rows_per_group)
    else:
        count = write_columnar_sorted(
            iter_shard(shard_index, spec.shard_count), path, schema,
            rows_per_group)
    _count_generated_rows(builder, count)
    return count


def generate_records(builder: ShardableBuilder,
                     shards: int = DEFAULT_SHARDS,
                     workers: int = 1, chunk_size: Optional[int] = None,
                     pool: Optional[WorkerPool] = None
                     ) -> Tuple[List[List[Any]], EngineReport]:
    """Generate all shards of ``builder``; returns per-shard record lists.

    The lists come back in shard order, each sorted by timestamp — ready
    for :func:`repro.datasets.records.write_jsonl_shards` or for
    ``builder.assemble``.  The builder travels as shared run state
    (serialized once per run, decoded once per worker); ``chunk_size``
    batches shard dispatch and never affects the generated records.
    """
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    name = type(builder).__name__
    shard_args = [(i, shards) for i in range(shards)]
    return run_sharded(_build_shard, shard_args, workers=workers,
                       task=f"generate:{name}", chunk_size=chunk_size,
                       shared=(builder,), pool=pool)


def generate_dataset(builder: ShardableBuilder,
                     shards: int = DEFAULT_SHARDS,
                     workers: int = 1,
                     chunk_size: Optional[int] = None,
                     pool: Optional[WorkerPool] = None
                     ) -> Tuple[Any, EngineReport]:
    """Generate and assemble a full dataset object from shards."""
    shard_lists, report = generate_records(builder, shards=shards,
                                           workers=workers,
                                           chunk_size=chunk_size, pool=pool)
    return builder.assemble(shard_lists), report


def generate_records_spec(spec: ShardSpec, workers: int = 1,
                          chunk_size: Optional[int] = None,
                          pool: Optional[WorkerPool] = None
                          ) -> Tuple[List[List[Any]], EngineReport]:
    """Spec-dispatch twin of :func:`generate_records`.

    Workers rebuild the builder from ``spec`` (name + kwargs), so the
    inbound boundary carries O(shards) tuples of two small values; the
    shard record lists still return to the parent.  Byte-identical to
    the builder-object path for the same spec by construction — the
    equivalence suite asserts it.
    """
    shard_args = [(i,) for i in range(spec.shard_count)]
    return run_sharded(_build_shard_from_spec, shard_args, workers=workers,
                       task=f"generate:{spec.builder}",
                       chunk_size=chunk_size, shared=(spec,), pool=pool)


def generate_dataset_spec(spec: ShardSpec, workers: int = 1,
                          chunk_size: Optional[int] = None,
                          pool: Optional[WorkerPool] = None
                          ) -> Tuple[Any, EngineReport]:
    """Generate and assemble a dataset from a shard spec."""
    shard_lists, report = generate_records_spec(spec, workers=workers,
                                                chunk_size=chunk_size,
                                                pool=pool)
    return spec.make_builder().assemble(shard_lists), report


def generate_jsonl(spec: ShardSpec, out_path: Union[str, Path],
                   workers: int = 1, chunk_size: Optional[int] = None,
                   pool: Optional[WorkerPool] = None
                   ) -> Tuple[int, EngineReport]:
    """Generate ``spec`` straight to a JSONL trace at ``out_path``.

    Each worker writes its own ``<file>.shardNN`` sibling; the parent
    k-way-merges them into the final trace and removes the shard files.
    Record payloads never cross the pool boundary in either direction,
    and the merged bytes are identical for any (workers, chunk size,
    pool mode) — the same bytes the parent-side
    :func:`~repro.datasets.records.write_jsonl_shards` route produces.
    Returns ``(record count, engine report)``.
    """
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    shard_args = [(i,) for i in range(spec.shard_count)]
    counts, report = run_sharded(
        _write_shard_from_spec, shard_args, workers=workers,
        task=f"generate:{spec.builder}", chunk_size=chunk_size,
        shared=(spec, str(out)), pool=pool,
        count_of=lambda count: int(count))
    paths = [shard_path(out, i) for i in range(spec.shard_count)]
    merge_start = time.perf_counter()
    total = merge_jsonl_shards(paths, out)
    emitter = _obs_live.ACTIVE
    if emitter is not None:
        emitter.event("merge", task=f"generate:{spec.builder}",
                      records=total,
                      seconds=time.perf_counter() - merge_start)
    for path in paths:
        path.unlink()
    if total != sum(counts):
        raise RuntimeError(f"shard merge wrote {total} records, workers "
                           f"reported {sum(counts)}")
    return total, report


def generate_columnar(spec: ShardSpec, out_path: Union[str, Path],
                      schema: Optional[str] = None, workers: int = 1,
                      chunk_size: Optional[int] = None,
                      pool: Optional[WorkerPool] = None,
                      row_group_rows: Optional[int] = None
                      ) -> Tuple[int, EngineReport]:
    """Generate ``spec`` straight to a columnar trace at ``out_path``.

    The columnar twin of :func:`generate_jsonl`: each worker *streams*
    its shard into a packed ``<file>.shardNN`` row-group sibling (peak
    worker memory is one row group, not one shard), and the parent
    merges the shard *segments* — a group-granular stable k-way merge
    on ``(ts, shard index, row index)``
    (:func:`repro.datasets.columnar.merge_columnar_shards`) — into one
    file holding the same canonical record order as the JSONL route.
    ``schema`` defaults to the spec's builder name; pass it explicitly
    for builders registered outside :data:`SCHEMAS` whose records use
    one of the standard schemas.  ``row_group_rows=None`` (the default)
    writes the final file in the v1 single-block layout — byte-identical
    to what this function has always produced; a value keeps the final
    file in the v2 row-group layout with that group budget, making the
    whole generate→merge path out-of-core.  Either way the output is
    byte-identical for any (workers, chunk size, pool mode).  Returns
    ``(record count, engine report)``.
    """
    out = Path(out_path)
    out.parent.mkdir(parents=True, exist_ok=True)
    schema_name = spec.builder if schema is None else schema
    shard_args = [(i,) for i in range(spec.shard_count)]
    counts, report = run_sharded(
        _write_columnar_shard_from_spec, shard_args, workers=workers,
        task=f"generate:{spec.builder}", chunk_size=chunk_size,
        shared=(spec, str(out), schema_name, row_group_rows), pool=pool,
        count_of=lambda count: int(count))
    paths = [shard_path(out, i) for i in range(spec.shard_count)]
    merge_start = time.perf_counter()
    total = merge_columnar_shards(paths, out,
                                  row_group_rows=row_group_rows)
    emitter = _obs_live.ACTIVE
    if emitter is not None:
        emitter.event("merge", task=f"generate:{spec.builder}",
                      records=total,
                      seconds=time.perf_counter() - merge_start)
    for path in paths:
        path.unlink()
    if total != sum(counts):
        raise RuntimeError(f"columnar shard merge wrote {total} records, "
                           f"workers reported {sum(counts)}")
    return total, report
