"""Sharded dataset generation.

A *shardable builder* exposes three methods::

    shard_units() -> int                      # size of the unit universe
    build_shard(index, count) -> List[record] # one shard, ts-sorted
    assemble(shard_lists) -> dataset          # order-stable merge + wrap

``build_shard`` must depend only on the builder's parameters and the
shard index (its random stream is seeded via
:func:`repro.engine.seeding.derive_seed`), never on which worker runs it.
The engine then guarantees the merged output is identical for any worker
count, because shards are generated from fixed seeds and merged in shard
order.
"""

from __future__ import annotations

from typing import Any, List, Optional, Protocol, Sequence, Tuple

from ..obs import metrics as _obs_metrics
from .executor import EngineReport, run_sharded
from .sharding import DEFAULT_SHARDS


class ShardableBuilder(Protocol):
    """Structural contract for builders the engine can shard.

    Any dataset builder with these three methods (all of
    ``repro.datasets``'s builders qualify) can be handed to
    :func:`generate_records` / :func:`generate_dataset`; no inheritance
    is required.
    """

    def shard_units(self) -> int:
        """Size of the unit universe being divided across shards."""
        ...

    def build_shard(self, shard_index: int,
                    shard_count: int) -> List[Any]:
        """One shard's records, ts-sorted, seeded only by the index."""
        ...

    def assemble(self, shard_lists: Sequence[List[Any]]) -> Any:
        """Order-stable merge of the shard lists into the dataset."""
        ...


def _build_shard(builder: ShardableBuilder, shard_index: int,
                 shard_count: int) -> List[Any]:
    """Worker entry point; module-level so it pickles by reference."""
    records = builder.build_shard(shard_index, shard_count)
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        reg.counter("repro_generate_records_total",
                    "Records produced by sharded generation, per builder.",
                    ("builder",)).inc(len(records), type(builder).__name__)
    return records


def generate_records(builder: ShardableBuilder,
                     shards: int = DEFAULT_SHARDS,
                     workers: int = 1, chunk_size: Optional[int] = None
                     ) -> Tuple[List[List[Any]], EngineReport]:
    """Generate all shards of ``builder``; returns per-shard record lists.

    The lists come back in shard order, each sorted by timestamp — ready
    for :func:`repro.datasets.records.write_jsonl_shards` or for
    ``builder.assemble``.  ``chunk_size`` batches shard dispatch (the
    builder pickles once per chunk instead of once per shard); it never
    affects the generated records.
    """
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    name = type(builder).__name__
    shard_args = [(builder, i, shards) for i in range(shards)]
    return run_sharded(_build_shard, shard_args, workers=workers,
                       task=f"generate:{name}", chunk_size=chunk_size)


def generate_dataset(builder: ShardableBuilder,
                     shards: int = DEFAULT_SHARDS,
                     workers: int = 1,
                     chunk_size: Optional[int] = None
                     ) -> Tuple[Any, EngineReport]:
    """Generate and assemble a full dataset object from shards."""
    shard_lists, report = generate_records(builder, shards=shards,
                                           workers=workers,
                                           chunk_size=chunk_size)
    return builder.assemble(shard_lists), report
