#!/usr/bin/env python3
"""Quickstart: build a tiny Internet, resolve names with ECS, inspect
everything the paper cares about.

Run:  python examples/quickstart.py

Walks through the library bottom-up:
 1. craft a DNS query with an ECS option and round-trip it through the
    wire codec;
 2. stand up a delegation hierarchy, a static zone, and a CDN whose
    authoritative server uses ECS for proximity mapping;
 3. resolve through a compliant recursive resolver and watch the ECS
    scope control the cache.
"""

from repro import (EcsOption, Message, Name, RecordType, Zone,
                   decode_message, encode_message)
from repro.auth import CdnAuthoritative, DnsHierarchy, build_edge_pools
from repro.measure import StubClient
from repro.net import Network, Topology, city
from repro.resolvers import RecursiveResolver


def wire_format_demo() -> None:
    print("=== 1. Wire format and the ECS option ===")
    ecs = EcsOption.from_client_address("198.51.77.9")  # truncates to /24
    query = Message.make_query(Name.from_text("www.example.com"),
                               RecordType.A, msg_id=1, ecs=ecs)
    wire = encode_message(query)
    print(f"query encodes to {len(wire)} bytes")
    decoded = decode_message(wire)
    print(f"decoded ECS option: {decoded.ecs()}")
    print()


def build_world():
    topology = Topology()
    net = Network(topology)
    infra = topology.create_as("infra", "US")
    hierarchy = DnsHierarchy(net, infra)

    # A static zone, delegated from .com.
    zone = Zone(Name.from_text("example.com"))
    zone.add_soa()
    zone.add_text("www", "A", "93.184.216.34")
    hierarchy.host_zone(zone, city("Ashburn"))

    # A CDN with edges on four continents; its authoritative server maps
    # clients to the nearest edge using the ECS client subnet.
    cdn_as = topology.create_as("cdn", "US")
    pools = build_edge_pools(topology, cdn_as,
                             [city("Chicago"), city("Frankfurt"),
                              city("Singapore"), city("Sao Paulo")])
    cdn_ip = cdn_as.host_in(city("Ashburn"))
    cdn = CdnAuthoritative(cdn_ip, [Name.from_text("cdn.example.")],
                           pools, topology)
    net.attach(cdn)
    hierarchy.attach_authoritative(Name.from_text("cdn.example."), cdn_ip)

    # A compliant recursive resolver and two clients in Cleveland.
    isp = topology.create_as("isp", "US")
    resolver_ip = isp.host_in(city("Cleveland"))
    resolver = RecursiveResolver(resolver_ip, topology.clock,
                                 hierarchy.root_ips)
    net.attach(resolver)
    return net, topology, isp, resolver, cdn, resolver_ip


def main() -> None:
    wire_format_demo()

    net, topology, isp, resolver, cdn, resolver_ip = build_world()
    client_ip = isp.host_in(city("Cleveland"))
    client = StubClient(client_ip, net)

    print("=== 2. Recursive resolution over the hierarchy ===")
    result = client.query(resolver_ip, "www.example.com")
    print(f"www.example.com -> {result.addresses} "
          f"in {result.elapsed_ms:.1f} ms (virtual)")
    print()

    print("=== 3. ECS-driven CDN mapping and scope-keyed caching ===")
    result = client.query(resolver_ip, "video.cdn.example")
    decision = cdn.decisions[-1]
    print(f"client {client_ip} (Cleveland) mapped to edge pool in "
          f"{decision.pool.city.name} via hint source '{decision.hint_source}'")

    # A second client in the same /24 hits the resolver cache...
    sibling = client_ip.rsplit(".", 1)[0] + ".200"
    before = cdn.queries_received
    StubClient(sibling, net).query(resolver_ip, "video.cdn.example")
    print(f"same-/24 client: cache hit (CDN queried "
          f"{cdn.queries_received - before} more times)")

    # ...while a client in Tokyo misses (scope /24) and maps elsewhere.
    tokyo_client = isp.host_in(city("Tokyo"))
    before = cdn.queries_received
    StubClient(tokyo_client, net).query(resolver_ip, "video.cdn.example")
    decision = cdn.decisions[-1]
    print(f"Tokyo client: cache miss ({cdn.queries_received - before} new "
          f"CDN query), mapped to {decision.pool.city.name}")
    print()
    print(f"resolver cache stats: {resolver.cache.stats}")


if __name__ == "__main__":
    main()
