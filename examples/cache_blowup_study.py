#!/usr/bin/env python3
"""Reproduce the section 7 caching study: blow-up factors and hit rates.

Run:  python examples/cache_blowup_study.py [--fast]

Generates the Public Resolver/CDN and All-Names traces, replays them
through the scope-keyed cache simulator with and without ECS, and prints
the Figure 1/2/3 series next to the paper's reported values.
"""

import sys

from repro.analysis import (cdf_table, fig1_series, fig2_series, fig3_series,
                            format_table, percentile)
from repro.datasets import AllNamesBuilder, PublicCdnBuilder
from repro.datasets import paper_numbers as paper


def main() -> None:
    fast = "--fast" in sys.argv
    scale = 0.004 if fast else 0.01
    an_scale = 0.3 if fast else 1.0

    print("generating the Public Resolver/CDN trace...")
    public_cdn = PublicCdnBuilder(scale=scale, seed=1,
                                  duration_s=900 if fast else 1800).build()
    print(f"  {len(public_cdn.records)} ECS queries from "
          f"{len(public_cdn.resolver_ips)} egress resolver IPs")

    print("\nFigure 1 — cache blow-up CDF (TTL 20/40/60 s):")
    series = fig1_series(public_cdn, ttls=(20, 40, 60))
    print(cdf_table({f"TTL {t}s": v for t, v in series.items()}))
    print(f"paper: median ≈ 4, max {paper.FIG1_MAX_BLOWUP[20]} @TTL20, "
          f"{paper.FIG1_MAX_BLOWUP[40]} @TTL40, "
          f"{paper.FIG1_MAX_BLOWUP[60]} @TTL60")
    print(f"measured medians: " + ", ".join(
        f"{t}s={percentile(v, 0.5):.2f}" for t, v in series.items()))

    print("\ngenerating the All-Names trace...")
    allnames = AllNamesBuilder(scale=an_scale, seed=1).build()
    print(f"  {len(allnames.records)} queries from "
          f"{len(allnames.client_ips)} clients")

    fractions = (0.1, 0.25, 0.5, 0.75, 1.0)
    print("\nFigure 2 — blow-up vs client fraction:")
    f2 = fig2_series(allnames, fractions=fractions, seeds=(1, 2))
    print(format_table(("clients", "blow-up"),
                       [(f"{f:.0%}", round(b, 2)) for f, b in f2]))
    print(f"paper: ≈1.9 at 10% rising to {paper.FIG2_FULL_POPULATION_BLOWUP}"
          " at 100%")

    print("\nFigure 3 — hit rate with/without ECS:")
    f3 = fig3_series(allnames, fractions=fractions, seeds=(1, 2))
    print(format_table(("clients", "no ECS", "with ECS"),
                       [(f"{f:.0%}", f"{a:.1%}", f"{b:.1%}")
                        for f, a, b in f3]))
    print(f"paper @100%: {paper.FIG3_HIT_RATE_NO_ECS:.0%} without vs "
          f"{paper.FIG3_HIT_RATE_WITH_ECS:.0%} with ECS")


if __name__ == "__main__":
    main()
