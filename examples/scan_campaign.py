#!/usr/bin/env python3
"""Run the paper's active-measurement campaign end to end.

Run:  python examples/scan_campaign.py

Builds a simulated open-resolver ecosystem (the Scan universe), scans it
with IP-encoding hostnames exactly as section 4 describes, then runs the
section 5/6/8.2 analyses on the harvested records:

 * discovery: passive (CDN-side) vs active (scan) ECS resolver counts;
 * Table 1: source prefix lengths, with jammed-last-byte detection;
 * section 6.3: the twin-query caching-behavior experiment;
 * section 8.2: hidden resolver discovery and the Fig 4/5 distance split.
"""

from repro.analysis import (analyze_caching_behavior, analyze_discovery,
                            analyze_hidden_resolvers, build_table1,
                            summarize_scan)
from repro.datasets import ScanUniverseBuilder
from repro.measure import Scanner


def main() -> None:
    print("building the scan universe (forwarders, hidden resolvers, "
          "egress mix, MegaDNS)...")
    universe = ScanUniverseBuilder(seed=7, ingress_count=400).build()
    print(f"  {len(universe.chains)} ingress chains, "
          f"{len(universe.egress_specs)} non-MegaDNS egress resolvers, "
          f"{len(universe.megadns.egress_ips)} MegaDNS egress IPs")

    print("\nscanning every open ingress resolver once "
          "(no ECS in probes, per the paper)...")
    result = Scanner(universe).scan()
    print(summarize_scan(result))

    print()
    print(analyze_discovery(universe, result).report())

    print()
    table1 = build_table1(scan_result=result)
    print(table1.report())

    print("\nrunning the section 6.3 twin-query caching experiment...")
    caching = analyze_caching_behavior(universe)
    print(caching.report())

    print("\nhunting hidden resolvers (section 8.2)...")
    hidden = analyze_hidden_resolvers(universe, result)
    print(hidden.report())

    worst = max(hidden.combinations,
                key=lambda c: c.f_h_km - c.f_r_km, default=None)
    if worst is not None and worst.f_h_km > worst.f_r_km:
        print(f"\nworst pathological combination: forwarder "
              f"{worst.forwarder_ip} sits {worst.f_r_km:.0f} km from its "
              f"egress but the ECS-advertised hidden prefix "
              f"{worst.hidden_prefix} is {worst.f_h_km:.0f} km away — "
              "ECS as an obstacle, exactly the Santiago/Italy case.")


if __name__ == "__main__":
    main()
