#!/usr/bin/env python3
"""Classify a resolver population from an authoritative server's logs.

Run:  python examples/resolver_census.py

Generates a CDN-vantage query log (section 4's CDN dataset at small scale)
and recovers, per resolver, its probing strategy (section 6.1) and source
prefix length profile (Table 1) — then checks the verdicts against the
generator's ground truth, the kind of validation a real measurement study
cannot do.
"""

from collections import Counter

from repro.analysis import analyze_probing, build_table1
from repro.datasets import CdnDatasetBuilder
from repro.datasets.ditl import generate_root_trace
from repro.analysis import analyze_root_violations


def main() -> None:
    print("generating the CDN-vantage dataset (one simulated day, "
          "scaled population)...")
    dataset = CdnDatasetBuilder(scale=0.015, seed=3,
                                duration_s=6 * 3600).build()
    print(f"  {len(dataset.records)} queries from "
          f"{len(dataset.resolvers)} ECS-enabled resolvers")

    print("\nsection 6.1 — probing strategies:")
    analysis = analyze_probing(dataset)
    print(analysis.report())

    truth = Counter(spec.probing for spec in dataset.resolvers)
    print("\nground truth (generator):",
          {k: v for k, v in sorted(truth.items())})
    print(f"classifier accuracy: {analysis.accuracy:.1%}")

    print("\nTable 1 — source prefix lengths (CDN column):")
    print(build_table1(cdn_dataset=dataset).report())

    print("\nsection 6.1 — the DITL check (ECS sent to root servers):")
    trace = generate_root_trace(resolver_count=300, violators=15, seed=3)
    print(analyze_root_violations(trace).report())


if __name__ == "__main__":
    main()
