#!/usr/bin/env python3
"""ECS privacy and security, quantified.

Run:  python examples/privacy_and_security.py

Two studies from the paper's privacy discussion:

 1. probing-strategy leakage (section 6.1's critique): how many client
    address bits each observed probing strategy reveals to servers that
    never use them — and why the paper's own-address recommendation gets
    ECS discovery for free;
 2. ECS-targeted cache poisoning blast radius (Kintis et al.): a forged
    scope-keyed answer poisons exactly the victim prefix on a compliant
    resolver (invisible to monitors), but the whole resolver on the
    scope-ignoring resolvers section 6.3 found to be the majority.
"""

from repro.analysis import (compare_blast_radius, poisoning_report,
                            run_privacy_study)
from repro.analysis.poisoning import run_poisoning_experiment
from repro.core.cache import ScopeMode


def main() -> None:
    print("=== 1. Privacy leakage by probing strategy ===")
    study = run_privacy_study(seed=11)
    print(study.report())
    always = study.by_strategy()["always_ecs"]
    recommended = study.by_strategy()["recommended_own_address"]
    print(f"\nindiscriminate ECS wasted {always.wasted_leak_fraction:.0%} of "
          f"its revealed client bits on ECS-oblivious servers;")
    print(f"the paper's own-address probing revealed "
          f"{recommended.client_bits_to_plain_servers + recommended.client_bits_to_ecs_servers} "
          "client bits while still discovering every ECS adopter.")

    print("\n=== 2. Targeted cache poisoning blast radius ===")
    print(poisoning_report(compare_blast_radius()))

    print("\nscope granularity controls the radius on compliant caches:")
    for scope in (32, 24, 16, 10):
        outcome = run_poisoning_experiment(
            ScopeMode.HONOR, forged_scope=scope,
            victim_subnet="100.64.0.1" if scope == 32 else "100.64.0.0")
        print(f"  forged scope /{scope}: victim {outcome.victim_fraction:.0%}"
              f", collateral {outcome.collateral_fraction:.0%}")


if __name__ == "__main__":
    main()
