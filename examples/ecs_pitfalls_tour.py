#!/usr/bin/env python3
"""A tour of section 8's ECS pitfalls, each demonstrated live.

Run:  python examples/ecs_pitfalls_tour.py

 1. Unroutable ECS prefixes (Table 2): loopback/link-local client subnets
    sent to a literal-lookup CDN map across the globe;
 2. Source prefix length thresholds (Figs 6/7): CDN-1 needs /24, CDN-2
    needs /21 — shorter prefixes silently disable ECS;
 3. CNAME flattening (Fig 8): a careless DNS provider maps the zone apex
    near itself instead of near the client.
"""

from repro.analysis import run_flattening_case_study, run_table2
from repro.analysis.flattening import FlatteningLab
from repro.analysis.mapping_quality import (MappingQualityLab,
                                            crossover_prefix_length,
                                            measure_mapping_quality)
from repro.analysis.unroutable import UnroutableLab


def pitfall_unroutable() -> None:
    print("=== Pitfall 1: unroutable ECS prefixes (section 8.1) ===")
    lab = UnroutableLab.build()
    table = run_table2(lab)
    print(table.report())
    near = table.row("none").rtt_ms
    worst = max(table.rows, key=lambda r: r.rtt_ms or 0)
    print(f"-> routable mapping: {near:.0f} ms; worst unroutable mapping: "
          f"{worst.rtt_ms:.0f} ms to {worst.location}\n")


def pitfall_prefix_length() -> None:
    print("=== Pitfall 2: improper source prefix lengths (section 8.3) ===")
    lab = MappingQualityLab.build(probe_count=120, seed=5)
    for cdn, qname, label in ((lab.cdn1, lab.cdn1_qname, "CDN-1"),
                              (lab.cdn2, lab.cdn2_qname, "CDN-2")):
        series = measure_mapping_quality(lab, cdn, qname,
                                         prefix_lengths=(16, 20, 21, 23, 24))
        cliff = crossover_prefix_length(series)
        print(f"{label}: median connect /24 = {series.median(24):.0f} ms, "
              f"/16 = {series.median(16):.0f} ms; quality collapses below "
              f"/{(cliff or 0) + 1}")
    print("-> sending /24 everywhere is the only safe policy; per-CDN "
          "thresholds differ and are invisible to resolvers\n")


def pitfall_flattening() -> None:
    print("=== Pitfall 3: CNAME flattening (section 8.4) ===")
    careless = run_flattening_case_study(FlatteningLab.build(forward_ecs=False))
    print(careless.report("careless provider (no backend ECS)"))
    careful = run_flattening_case_study(FlatteningLab.build(forward_ecs=True))
    print(f"\nwith backend ECS forwarding the apex handshake drops from "
          f"{careless.apex_handshake_ms:.0f} ms to "
          f"{careful.apex_handshake_ms:.0f} ms")


def main() -> None:
    pitfall_unroutable()
    pitfall_prefix_length()
    pitfall_flattening()


if __name__ == "__main__":
    main()
