"""Setup shim for environments without the `wheel` package (offline PEP 660
builds need bdist_wheel). `python setup.py develop` keeps `pip install -e .`
equivalent functionality available offline."""
from setuptools import setup

setup()
