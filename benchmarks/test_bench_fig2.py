"""Figure 2 — cache blow-up vs client-population fraction (All-Names).

Paper: the blow-up grows from ≈1.9 at 10% of clients to 4.3 at 100%, with
no flattening at the right edge — busier resolvers blow up more.  The
shape: a monotonically increasing, still-rising curve.
"""

from repro.analysis import fig2_series, format_table
from repro.datasets import paper_numbers as paper

FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_bench_fig2_blowup_vs_clients(allnames_dataset, benchmark,
                                      save_report):
    series = benchmark.pedantic(
        lambda: fig2_series(allnames_dataset, fractions=FRACTIONS,
                            seeds=(1, 2, 3)),
        rounds=1, iterations=1)

    rows = [(f"{frac:.0%}", round(blowup, 2)) for frac, blowup in series]
    text = format_table(("clients", "blow-up factor"), rows,
                        title="Figure 2 — blow-up vs client fraction")
    save_report("fig2_blowup_vs_clients",
                text + f"\npaper: ≈1.9 → {paper.FIG2_FULL_POPULATION_BLOWUP}"
                       " (rising, not flattening)")

    values = [blowup for _, blowup in series]
    assert values[0] < values[-1], "blow-up grows with client population"
    assert values[-1] > 2.5, "full-population blow-up is substantial"
    assert 1.2 < values[0] < 3.0, "small-population blow-up near paper's 1.9"
    # Mostly monotone (small sampling noise tolerated).
    violations = sum(1 for a, b in zip(values, values[1:]) if b < a - 0.15)
    assert violations <= 1
    # Still rising at the right edge (the paper's "does not flatten").
    assert values[-1] > values[-3]
