"""Table 1 — ECS source prefix lengths, from both vantage points.

Paper's shape: /24 dominates the Scan column (Google), jammed-last-byte
/32s dominate the CDN column (the Chinese dominant AS), with small
populations at 18/22/25 and an IPv6 tail.
"""

from repro.analysis import build_table1


def test_bench_table1(cdn_dataset, scan_result, benchmark, save_report):
    table = benchmark.pedantic(
        lambda: build_table1(cdn_dataset, scan_result),
        rounds=1, iterations=1)
    save_report("table1_prefix_lengths", table.report())

    # CDN column: jammed /32 is the largest class (dominant AS).
    cdn = table.cdn_counts
    assert cdn["32/jammed last byte"] == max(cdn.values())
    # /24 is the second pillar.
    assert cdn.get("24", 0) > 0
    # Scan column: /24 dominates (the Google-like service).
    scan = table.scan_counts
    assert scan.get("24", 0) == max(scan.values())
    # Jammed /32s exist in the scan too (Chinese ISP egress).
    assert scan.get("32/jammed last byte", 0) > 0
    # RFC violations beyond /24 exist in the CDN column (the /25 senders).
    over_24 = [k for k in cdn if k.startswith("25") or ",25" in k]
    assert over_24


def test_bench_table1_jammed_byte_values(cdn_dataset, benchmark,
                                         save_report):
    """The jammed byte is 0x01 or 0x00, as the paper observes."""
    from repro.analysis import cdn_prefix_profiles
    profiles = benchmark.pedantic(lambda: cdn_prefix_profiles(cdn_dataset),
                                  rounds=1, iterations=1)
    jammed = [p.jammed_last_byte for p in profiles.values()
              if p.jammed_last_byte is not None]
    assert jammed
    assert set(jammed) <= {0x00, 0x01}
