"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, writes
the rendered paper-vs-measured report under ``benchmarks/results/``, and
asserts the *shape* of the result (who wins, rough factors, crossovers).
Bench scales are larger than the test suite's so the distributions are
stable; they remain far below the paper's real datasets.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets import (AllNamesBuilder, CdnDatasetBuilder,
                            PublicCdnBuilder, ScanUniverseBuilder)
from repro.measure import Scanner

RESULTS_DIR = Path(__file__).parent / "results"

#: Where the engine throughput numbers land (records/sec at workers=1/4).
BENCH_ENGINE_JSON = RESULTS_DIR / "BENCH_engine.json"

#: Where the hot-path fast-lane numbers land (reference vs fast rec/s).
BENCH_HOTPATH_JSON = RESULTS_DIR / "BENCH_hotpath.json"

#: Where the observability-overhead numbers land (off vs metrics vs
#: traced rec/s on the batched replay path).
BENCH_OBS_JSON = RESULTS_DIR / "BENCH_obs.json"

#: Where the columnar-store numbers land (object vs columnar replay
#: rec/s, on-disk and resident bytes/row per format).
BENCH_DATASETS_JSON = RESULTS_DIR / "BENCH_datasets.json"


def pytest_collection_modifyitems(items) -> None:
    """Mark everything under benchmarks/ so ``-m "not bench"`` skips it.

    The tier-1 suite (``testpaths = tests``) never collects these; the
    marker keeps combined runs (``pytest tests benchmarks``) splittable.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def report_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def engine_bench(report_dir):
    """Collects engine throughput samples; written to BENCH_engine.json.

    Benchmark tests drop ``name -> {records, seconds, records_per_second}``
    entries in; the file is (re)written at session teardown so the repo
    keeps a machine-readable perf trajectory across PRs.
    """
    samples = {}
    yield samples
    if samples:
        BENCH_ENGINE_JSON.write_text(json.dumps(samples, indent=2,
                                                sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def hotpath_bench(report_dir):
    """Collects hot-path samples; written to BENCH_hotpath.json.

    Each sample is ``name -> {records, reference_rps, fast_rps, speedup}``
    — before-vs-after throughput of one fast lane against its readable
    reference implementation (see docs/performance.md).
    """
    samples = {}
    yield samples
    if samples:
        BENCH_HOTPATH_JSON.write_text(json.dumps(samples, indent=2,
                                                 sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def obs_bench(report_dir):
    """Collects observability overhead samples; written to BENCH_obs.json.

    Each sample is ``name -> {records, disabled_rps, metrics_rps,
    traced_rps, ...}`` — throughput of one instrumented path with
    collection off versus on, so ``compare_bench.py`` (which treats any
    ``*_rps`` key as a throughput metric) tracks the disabled-path cost
    across PRs.
    """
    samples = {}
    yield samples
    if samples:
        BENCH_OBS_JSON.write_text(json.dumps(samples, indent=2,
                                             sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def datasets_bench(report_dir):
    """Collects columnar-store samples; written to BENCH_datasets.json.

    Each sample is ``name -> {rows, object_replay_rps,
    columnar_replay_rps, columnar_speedup, jsonl_bytes_per_row,
    columnar_bytes_per_row, bytes_ratio, ...}`` — the JSONL-parse replay
    pipeline versus the mmap'd columnar pipeline over the same trace.
    ``compare_bench.py --check-columnar`` gates on the speedup and the
    bytes ratio.
    """
    samples = {}
    yield samples
    if samples:
        BENCH_DATASETS_JSON.write_text(json.dumps(samples, indent=2,
                                                  sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def save_report(report_dir):
    """Write a rendered report and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        (report_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def scan_universe():
    return ScanUniverseBuilder(seed=42, ingress_count=500).build()


@pytest.fixture(scope="session")
def scan_result(scan_universe):
    return Scanner(scan_universe).scan()


@pytest.fixture(scope="session")
def cdn_dataset():
    return CdnDatasetBuilder(scale=0.02, seed=42,
                             duration_s=6 * 3600.0).build()


@pytest.fixture(scope="session")
def allnames_dataset():
    return AllNamesBuilder(scale=1.0, seed=42).build()


@pytest.fixture(scope="session")
def public_cdn_dataset():
    return PublicCdnBuilder(scale=0.01, seed=42,
                            duration_s=1800.0).build()
