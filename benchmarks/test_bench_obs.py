"""Observability overhead benchmarks: collection off vs on.

The design contract of ``repro.obs`` is that *disabled* collection is
free on the PR-2 fast paths (one module-global load per instrumented
call, and the batched replay loop contains none at all) and that
*enabled* metrics stay cheap because the replay path records per-shard
aggregates after the hot loop rather than per-record samples.  These
benchmarks measure all three modes over the same batched replay and
write ``benchmarks/results/BENCH_obs.json`` via the ``obs_bench``
fixture; ``compare_bench.py`` picks the ``*_rps`` keys up automatically.

Scale with ``HOTPATH_BENCH_SCALE`` (default 1.0; CI smoke uses 0.1).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.cache_sim import replay_partial_batched
from repro.datasets.allnames import AllNamesBuilder
from repro.engine.replay import _replay_shard, replay_sharded
from repro.obs import observe
from repro.obs import live as obs_live
from repro.obs.live import LiveSink, SinkEmitter

SCALE = float(os.environ.get("HOTPATH_BENCH_SCALE", "1.0"))

#: Enabled-metrics throughput floor vs disabled (per-shard aggregate
#: recording must stay within timing noise of the bare loop).
METRICS_FLOOR = 0.8

#: Traced throughput floor: spans are per-record (capped per shard), so
#: the traced lane is allowed to be slower, but not catastrophically.
TRACED_FLOOR = 0.2

#: In-test live-heartbeat floor (loose; the CI gate applies the strict
#: <= 5% bound via ``compare_bench.py --check-obs-overhead``).
LIVE_FLOOR = 0.8


@pytest.fixture(scope="module")
def replay_records():
    return AllNamesBuilder(scale=0.25 * SCALE, seed=42).build().records


def _time_replay(records):
    start = time.perf_counter()
    partial = _replay_shard(records, "allnames")
    return partial, time.perf_counter() - start


@pytest.mark.hotpath
def test_obs_overhead_on_replay(obs_bench, replay_records):
    """Disabled vs metrics-enabled vs traced throughput, same records."""
    records = replay_records
    baseline = replay_partial_batched(records, "client_ip")

    disabled_partial, disabled_seconds = _time_replay(records)
    with observe(metrics=True):
        metrics_partial, metrics_seconds = _time_replay(records)
    with observe(metrics=True, tracing=True):
        traced_partial, traced_seconds = _time_replay(records)

    # Collection never changes results: all three modes are
    # counter-identical to the bare batched replay.
    assert disabled_partial == baseline
    assert metrics_partial == baseline
    assert traced_partial == baseline

    n = len(records)
    disabled_rps = n / disabled_seconds
    metrics_rps = n / metrics_seconds
    traced_rps = n / traced_seconds
    obs_bench["replay_allnames_obs"] = {
        "records": n,
        "disabled_rps": round(disabled_rps, 1),
        "metrics_rps": round(metrics_rps, 1),
        "traced_rps": round(traced_rps, 1),
        "metrics_ratio": round(metrics_rps / disabled_rps, 3),
        "traced_ratio": round(traced_rps / disabled_rps, 3),
    }
    assert metrics_rps >= METRICS_FLOOR * disabled_rps
    assert traced_rps >= TRACED_FLOOR * disabled_rps


@pytest.mark.hotpath
def test_live_heartbeat_overhead(obs_bench, replay_records):
    """Sharded replay throughput with the heartbeat plane off vs on.

    Heartbeats fire at shard boundaries (run/dispatch/shard events),
    never per record, so an active :class:`LiveSink` must cost a small
    constant per shard.  Best-of-3 per mode, interleaved, to keep the
    ratio out of scheduler noise; the CI ``obs-live`` job holds the
    written ``live_on_rps``/``live_off_rps`` pair to a <= 5% overhead
    bound via ``compare_bench.py --check-obs-overhead``.
    """
    records = replay_records
    shards = 8

    def timed():
        start = time.perf_counter()
        result, _ = replay_sharded(records, "allnames", shards=shards)
        return result, time.perf_counter() - start

    off_result = on_result = None
    off_seconds = on_seconds = float("inf")
    sink = None
    for _ in range(3):
        off_result, seconds = timed()
        off_seconds = min(off_seconds, seconds)
        sink = LiveSink()
        previous = obs_live.activate(SinkEmitter(sink))
        try:
            on_result, seconds = timed()
        finally:
            obs_live.activate(previous)
            sink.close()
        on_seconds = min(on_seconds, seconds)

    # The live plane never touches results, and every shard's lifecycle
    # beats arrived (run_start + per-shard start/end + run_end).
    assert on_result == off_result
    assert sink is not None and sink.heartbeats >= 2 * shards + 2

    n = len(records)
    off_rps = n / off_seconds
    on_rps = n / on_seconds
    obs_bench["replay_allnames_live"] = {
        "records": n,
        "shards": shards,
        "heartbeats": sink.heartbeats,
        "live_off_rps": round(off_rps, 1),
        "live_on_rps": round(on_rps, 1),
        "live_ratio": round(on_rps / off_rps, 3),
    }
    assert on_rps >= LIVE_FLOOR * off_rps
