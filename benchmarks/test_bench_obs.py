"""Observability overhead benchmarks: collection off vs on.

The design contract of ``repro.obs`` is that *disabled* collection is
free on the PR-2 fast paths (one module-global load per instrumented
call, and the batched replay loop contains none at all) and that
*enabled* metrics stay cheap because the replay path records per-shard
aggregates after the hot loop rather than per-record samples.  These
benchmarks measure all three modes over the same batched replay and
write ``benchmarks/results/BENCH_obs.json`` via the ``obs_bench``
fixture; ``compare_bench.py`` picks the ``*_rps`` keys up automatically.

Scale with ``HOTPATH_BENCH_SCALE`` (default 1.0; CI smoke uses 0.1).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.cache_sim import replay_partial_batched
from repro.datasets.allnames import AllNamesBuilder
from repro.engine.replay import _replay_shard
from repro.obs import observe

SCALE = float(os.environ.get("HOTPATH_BENCH_SCALE", "1.0"))

#: Enabled-metrics throughput floor vs disabled (per-shard aggregate
#: recording must stay within timing noise of the bare loop).
METRICS_FLOOR = 0.8

#: Traced throughput floor: spans are per-record (capped per shard), so
#: the traced lane is allowed to be slower, but not catastrophically.
TRACED_FLOOR = 0.2


@pytest.fixture(scope="module")
def replay_records():
    return AllNamesBuilder(scale=0.25 * SCALE, seed=42).build().records


def _time_replay(records):
    start = time.perf_counter()
    partial = _replay_shard(records, "allnames")
    return partial, time.perf_counter() - start


@pytest.mark.hotpath
def test_obs_overhead_on_replay(obs_bench, replay_records):
    """Disabled vs metrics-enabled vs traced throughput, same records."""
    records = replay_records
    baseline = replay_partial_batched(records, "client_ip")

    disabled_partial, disabled_seconds = _time_replay(records)
    with observe(metrics=True):
        metrics_partial, metrics_seconds = _time_replay(records)
    with observe(metrics=True, tracing=True):
        traced_partial, traced_seconds = _time_replay(records)

    # Collection never changes results: all three modes are
    # counter-identical to the bare batched replay.
    assert disabled_partial == baseline
    assert metrics_partial == baseline
    assert traced_partial == baseline

    n = len(records)
    disabled_rps = n / disabled_seconds
    metrics_rps = n / metrics_seconds
    traced_rps = n / traced_seconds
    obs_bench["replay_allnames_obs"] = {
        "records": n,
        "disabled_rps": round(disabled_rps, 1),
        "metrics_rps": round(metrics_rps, 1),
        "traced_rps": round(traced_rps, 1),
        "metrics_ratio": round(metrics_rps / disabled_rps, 3),
        "traced_ratio": round(traced_rps / disabled_rps, 3),
    }
    assert metrics_rps >= METRICS_FLOOR * disabled_rps
    assert traced_rps >= TRACED_FLOOR * disabled_rps
