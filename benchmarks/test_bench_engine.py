"""Engine throughput benchmark: the pool must make ``--workers 4`` win.

Measures the sharded generate and replay paths at workers=1 and
workers=4 on a persistent pool, asserts the determinism contract holds
at bench scale, and records per-worker-count samples — throughput,
serialized bytes per shard, host CPU count and the 4v1 speedup — into
``benchmarks/results/BENCH_engine.json`` via the ``engine_bench``
fixture.  ``compare_bench.py --check-speedup`` gates on those samples:
on hosts with >= 4 CPUs the replay path must clear ``workers4/workers1
>= 1.5``; on smaller hosts the gate degrades to a no-pessimization
floor, because a 1-core container cannot demonstrate parallel speedup
no matter how cheap dispatch is.

The machine-independent evidence lives in ``*_payload_bytes_per_shard``:
spec dispatch ships index-sized blobs where the legacy protocol shipped
whole materialized record lists, and that ratio holds on any host.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.engine import ShardSpec, WorkerPool, generate_jsonl
from repro.engine.generate import generate_records_spec
from repro.engine.replay import replay_jsonl_sharded
from repro.engine.sharding import DEFAULT_SHARDS

WORKER_COUNTS = (1, 4)
CPU_COUNT = os.cpu_count() or 1

GENERATE_SPEC = ShardSpec.create("allnames", shard_count=DEFAULT_SHARDS,
                                 scale=0.5, seed=42)
REPLAY_SPEC = ShardSpec.create("public-cdn", shard_count=DEFAULT_SHARDS,
                               scale=0.01, seed=42, duration_s=1800.0)


def _record(engine_bench, name: str, report) -> None:
    engine_bench[name] = {
        "records": report.total_records,
        "seconds": round(report.wall_seconds, 4),
        "records_per_second": round(report.records_per_second, 1),
        "shards": len(report.shards),
        "workers": report.workers,
        "pool_mode": report.pool_mode,
        "cpu_count": CPU_COUNT,
        "header_bytes": report.header_bytes,
        "payload_bytes_per_shard": round(report.payload_bytes_per_shard, 1),
    }


def _speedup(engine_bench, base: str) -> None:
    """Record the 4v1 ratio next to the samples (informational here;
    the enforcing side is ``compare_bench.py --check-speedup``)."""
    one = engine_bench[f"{base}_workers1"]["records_per_second"]
    four = engine_bench[f"{base}_workers4"]["records_per_second"]
    engine_bench[f"{base}_workers4"]["speedup_vs_workers1"] = \
        round(four / one, 3) if one else 0.0


@pytest.mark.engine
def test_engine_generate_throughput(engine_bench, save_report):
    shard_lists = {}
    reports = {}
    for workers in WORKER_COUNTS:
        with WorkerPool(workers) as pool:
            lists, report = generate_records_spec(GENERATE_SPEC,
                                                  workers=workers, pool=pool)
        shard_lists[workers] = lists
        reports[workers] = report
        _record(engine_bench, f"generate_allnames_workers{workers}", report)
    # The determinism contract, at bench scale.
    assert shard_lists[1] == shard_lists[4]
    assert reports[4].pool_mode == "persistent"
    # What the legacy protocol would have shipped back per shard versus
    # what spec dispatch actually sends out: the structural win.
    legacy = sum(len(pickle.dumps(s)) for s in shard_lists[1]) \
        / max(1, len(shard_lists[1]))
    engine_bench["generate_allnames_workers4"][
        "legacy_payload_bytes_per_shard"] = round(legacy, 1)
    _speedup(engine_bench, "generate_allnames")
    save_report("engine_generate_throughput",
                "\n\n".join(reports[w].report() for w in WORKER_COUNTS))


@pytest.mark.engine
def test_engine_replay_throughput(engine_bench, save_report, tmp_path):
    trace = tmp_path / "public-cdn.jsonl"
    generate_jsonl(REPLAY_SPEC, trace, workers=1)
    results = {}
    reports = {}
    for workers in WORKER_COUNTS:
        with WorkerPool(workers) as pool:
            result, report = replay_jsonl_sharded(trace, "public-cdn",
                                                  shards=DEFAULT_SHARDS,
                                                  workers=workers, pool=pool)
        results[workers] = result
        reports[workers] = report
        _record(engine_bench, f"replay_public_cdn_workers{workers}", report)
    assert results[1] == results[4]
    assert results[1].blowup >= 1.0
    _speedup(engine_bench, "replay_public_cdn")
    save_report("engine_replay_throughput",
                "\n\n".join(reports[w].report() for w in WORKER_COUNTS))
