"""Engine throughput benchmark: records/sec at workers=1 vs workers=4.

Measures the sharded generate and replay paths at both worker counts,
asserts the determinism contract holds at bench scale, and records the
throughput samples into ``benchmarks/results/BENCH_engine.json`` (via
the ``engine_bench`` fixture) — the repo's perf trajectory for the
sharded pipeline.
"""

from __future__ import annotations

import pytest

from repro.datasets import AllNamesBuilder, PublicCdnBuilder
from repro.engine import DEFAULT_SHARDS
from repro.engine.generate import generate_dataset
from repro.engine.replay import replay_sharded

WORKER_COUNTS = (1, 4)


def _record(engine_bench, name: str, report) -> None:
    engine_bench[name] = {
        "records": report.total_records,
        "seconds": round(report.wall_seconds, 4),
        "records_per_second": round(report.records_per_second, 1),
        "shards": len(report.shards),
        "workers": report.workers,
    }


@pytest.mark.engine
def test_engine_generate_throughput(engine_bench, save_report):
    datasets = {}
    reports = {}
    for workers in WORKER_COUNTS:
        builder = AllNamesBuilder(scale=0.5, seed=42)
        dataset, report = generate_dataset(builder, shards=DEFAULT_SHARDS,
                                           workers=workers)
        datasets[workers] = dataset
        reports[workers] = report
        _record(engine_bench, f"generate_allnames_workers{workers}", report)
    # The determinism contract, at bench scale.
    assert datasets[1].records == datasets[4].records
    assert reports[1].total_records == len(datasets[1].records)
    save_report("engine_generate_throughput",
                "\n\n".join(reports[w].report() for w in WORKER_COUNTS))


@pytest.mark.engine
def test_engine_replay_throughput(engine_bench, save_report):
    builder = PublicCdnBuilder(scale=0.01, seed=42, duration_s=1800.0)
    dataset, _ = generate_dataset(builder, shards=DEFAULT_SHARDS, workers=1)
    results = {}
    reports = {}
    for workers in WORKER_COUNTS:
        result, report = replay_sharded(dataset.records, "public-cdn",
                                        shards=DEFAULT_SHARDS,
                                        workers=workers)
        results[workers] = result
        reports[workers] = report
        _record(engine_bench, f"replay_public_cdn_workers{workers}", report)
    assert results[1] == results[4]
    assert results[1].blowup >= 1.0
    save_report("engine_replay_throughput",
                "\n\n".join(reports[w].report() for w in WORKER_COUNTS))
