"""Section 5 — discovering ECS-enabled resolvers: passive vs active.

Paper: the CDN vantage finds 4 147 ECS resolvers vs 278 (non-Google) from
the scan, with 234 of the 278 also present passively.  The shape to hold:
passive ≫ active, and the overlap covers most of the active set.
"""


from repro.analysis import analyze_discovery


def test_bench_discovery(scan_universe, scan_result, benchmark, save_report):
    analysis = benchmark.pedantic(
        lambda: analyze_discovery(scan_universe, scan_result),
        rounds=1, iterations=1)
    save_report("section5_discovery", analysis.report())

    active = len(analysis.active_found)
    passive = len(analysis.passive_found)
    overlap = len(analysis.overlap)
    assert passive > 5 * active, "passive discovery must dominate"
    assert overlap >= 0.7 * active, "most active finds also appear passively"
    assert overlap < active, "a few active finds stay passive-invisible"
