"""Figure 1 — CDF of the cache blow-up factor (Public Resolver/CDN replay).

Paper: with the CDN's 20-second TTL, half the egress resolvers need over
4× the cache with ECS (max 15.95); replaying with 40- and 60-second TTLs
pushes the maximum to 23.68 and 29.85.  The shape: a wide CDF with median
well above 2 at TTL 20, and both median and maximum growing with TTL.
"""

from repro.analysis import cdf_table, fig1_series, percentile
from repro.datasets import paper_numbers as paper


def test_bench_fig1_blowup_cdf(public_cdn_dataset, benchmark, save_report):
    series = benchmark.pedantic(
        lambda: fig1_series(public_cdn_dataset, ttls=(20, 40, 60)),
        rounds=1, iterations=1)

    labeled = {f"TTL {ttl}s": values for ttl, values in series.items()}
    text = cdf_table(labeled, title="Figure 1 — cache blow-up factor CDF")
    paper_line = ("paper: median≈4 and max {:.2f} @TTL20; max {:.2f} @TTL40;"
                  " max {:.2f} @TTL60").format(
        paper.FIG1_MAX_BLOWUP[20], paper.FIG1_MAX_BLOWUP[40],
        paper.FIG1_MAX_BLOWUP[60])
    save_report("fig1_blowup_cdf", f"{text}\n{paper_line}")

    median_20 = percentile(series[20], 0.5)
    assert 2.0 < median_20 < 8.0, "TTL-20 median in the paper's regime"
    assert max(series[20]) > 2 * median_20, "heavy upper tail"
    # Monotone growth with TTL, the paper's second finding.
    assert percentile(series[40], 0.5) > median_20
    assert percentile(series[60], 0.5) > percentile(series[40], 0.5)
    assert max(series[60]) > max(series[40]) > max(series[20])
    # Every resolver needs at least as much cache with ECS as without.
    assert all(v >= 1.0 for v in series[20])
