#!/usr/bin/env python3
"""Diff two ``BENCH_*.json`` files and fail on throughput regressions.

Usage::

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.25]

Both files are the ``name -> {metric: value}`` shape the bench fixtures
write (``BENCH_engine.json``, ``BENCH_hotpath.json``).  Every numeric
throughput metric — a key named ``records_per_second`` or ending in
``_rps`` — present in *both* files is compared; a drop of more than
``threshold`` (default 25%) is a regression and the exit status is 1.
Benchmarks present in only one file are reported but never fail the run,
so adding or retiring benchmarks does not break CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Metric keys treated as throughput (higher is better).
THROUGHPUT_KEYS = ("records_per_second",)
THROUGHPUT_SUFFIX = "_rps"


def is_throughput_key(key: str) -> bool:
    return key in THROUGHPUT_KEYS or key.endswith(THROUGHPUT_SUFFIX)


def throughput_metrics(doc: Dict) -> Dict[Tuple[str, str], float]:
    """Flatten ``{bench: {metric: value}}`` to throughput leaves only."""
    out: Dict[Tuple[str, str], float] = {}
    for bench, metrics in doc.items():
        if not isinstance(metrics, dict):
            continue
        for key, value in metrics.items():
            if is_throughput_key(key) and isinstance(value, (int, float)):
                out[(bench, key)] = float(value)
    return out


def compare(old: Dict, new: Dict,
            threshold: float = 0.25) -> Tuple[List[str], List[str]]:
    """Compare two bench documents.

    Returns ``(report_lines, regressions)``; the run fails when
    ``regressions`` is non-empty.
    """
    old_metrics = throughput_metrics(old)
    new_metrics = throughput_metrics(new)
    lines: List[str] = []
    regressions: List[str] = []
    for key in sorted(set(old_metrics) | set(new_metrics)):
        bench, metric = key
        label = f"{bench}.{metric}"
        if key not in old_metrics:
            lines.append(f"  NEW      {label}: {new_metrics[key]:,.1f}")
            continue
        if key not in new_metrics:
            lines.append(f"  RETIRED  {label} (was {old_metrics[key]:,.1f})")
            continue
        before, after = old_metrics[key], new_metrics[key]
        change = (after - before) / before if before else 0.0
        status = "ok"
        if change < -threshold:
            status = "REGRESSION"
            regressions.append(
                f"{label}: {before:,.1f} -> {after:,.1f} "
                f"({change:+.1%}, threshold -{threshold:.0%})")
        lines.append(f"  {status:<9}{label}: {before:,.1f} -> "
                     f"{after:,.1f} ({change:+.1%})")
    return lines, regressions


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("new", type=Path, help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional drop (default 0.25)")
    args = parser.parse_args(argv)

    old = json.loads(args.old.read_text())
    new = json.loads(args.new.read_text())
    lines, regressions = compare(old, new, args.threshold)
    print(f"comparing {args.old} -> {args.new} "
          f"(threshold -{args.threshold:.0%})")
    for line in lines:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} throughput regression(s):")
        for entry in regressions:
            print(f"  {entry}")
        return 1
    print("\nno throughput regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
