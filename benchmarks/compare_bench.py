#!/usr/bin/env python3
"""Diff two ``BENCH_*.json`` files and fail on throughput regressions.

Usage::

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.25]
    python benchmarks/compare_bench.py NEW.json --check-speedup
    python benchmarks/compare_bench.py BENCH_datasets.json --check-columnar
    python benchmarks/compare_bench.py BENCH_obs.json --check-obs-overhead

Both files are the ``name -> {metric: value}`` shape the bench fixtures
write (``BENCH_engine.json``, ``BENCH_hotpath.json``).  Every numeric
throughput metric — a key named ``records_per_second`` or ending in
``_rps`` — present in *both* files is compared; a drop of more than
``threshold`` (default 25%) is a regression and the exit status is 1.
Benchmarks present in only one file are reported but never fail the run,
so adding or retiring benchmarks does not break CI.

``--check-speedup`` additionally gates the *candidate* file's parallel
scaling: every ``<base>_workersN`` sample (N > 1) with a
``<base>_workers1`` sibling must clear ``N-worker rps / 1-worker rps >=
--min-speedup`` (default 1.5).  The gate is CPU-aware: a sample recorded
on a host with fewer than ``--speedup-cpus`` cores (the ``cpu_count``
field the engine bench writes) cannot physically demonstrate parallel
speedup, so it is held only to ``--low-cpu-floor`` — a no-pessimization
bound that still catches the ship-everything-through-pickle failure mode
(which measured ~0.2x) without pretending a 1-core container can scale.

``--check-columnar`` gates the columnar-store samples
(``BENCH_datasets.json``): every sample carrying both replay rates must
clear ``columnar_replay_rps / object_replay_rps >=
--min-columnar-speedup`` (default 3.0) and ``columnar_bytes_per_row /
jsonl_bytes_per_row <= --max-bytes-ratio`` (default 0.5) — the
acceptance bars the columnar substrate shipped under.  Samples that
also carry the out-of-core fields are held to two more bars:
``rowgroup_replay_rps / columnar_replay_rps >= --min-rowgroup-ratio``
(default 0.9 — group streaming may cost at most 10% throughput) and
``rowgroup_peak_bytes_per_row / columnar_resident_bytes_per_row <=
--max-rowgroup-peak-fraction`` (default 0.5 — the bounded-memory bar:
streaming a trace must need well under the whole-column footprint).
Unlike the parallel gate this one is not CPU-gated: the pipelines are
single-threaded, so a slow host slows them together.

``--check-obs-overhead`` gates the live-telemetry samples
(``BENCH_obs.json``): every sample carrying both ``live_off_rps`` and
``live_on_rps`` must keep ``on/off >= 1 - --max-obs-overhead`` (default
0.05 — heartbeats may cost at most 5% throughput).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Tuple

#: Metric keys treated as throughput (higher is better).
THROUGHPUT_KEYS = ("records_per_second",)
THROUGHPUT_SUFFIX = "_rps"


def is_throughput_key(key: str) -> bool:
    return key in THROUGHPUT_KEYS or key.endswith(THROUGHPUT_SUFFIX)


def throughput_metrics(doc: Dict) -> Dict[Tuple[str, str], float]:
    """Flatten ``{bench: {metric: value}}`` to throughput leaves only."""
    out: Dict[Tuple[str, str], float] = {}
    for bench, metrics in doc.items():
        if not isinstance(metrics, dict):
            continue
        for key, value in metrics.items():
            if is_throughput_key(key) and isinstance(value, (int, float)):
                out[(bench, key)] = float(value)
    return out


def compare(old: Dict, new: Dict,
            threshold: float = 0.25) -> Tuple[List[str], List[str]]:
    """Compare two bench documents.

    Returns ``(report_lines, regressions)``; the run fails when
    ``regressions`` is non-empty.
    """
    old_metrics = throughput_metrics(old)
    new_metrics = throughput_metrics(new)
    lines: List[str] = []
    regressions: List[str] = []
    for key in sorted(set(old_metrics) | set(new_metrics)):
        bench, metric = key
        label = f"{bench}.{metric}"
        if key not in old_metrics:
            lines.append(f"  NEW      {label}: {new_metrics[key]:,.1f}")
            continue
        if key not in new_metrics:
            lines.append(f"  RETIRED  {label} (was {old_metrics[key]:,.1f})")
            continue
        before, after = old_metrics[key], new_metrics[key]
        change = (after - before) / before if before else 0.0
        status = "ok"
        if change < -threshold:
            status = "REGRESSION"
            regressions.append(
                f"{label}: {before:,.1f} -> {after:,.1f} "
                f"({change:+.1%}, threshold -{threshold:.0%})")
        lines.append(f"  {status:<9}{label}: {before:,.1f} -> "
                     f"{after:,.1f} ({change:+.1%})")
    return lines, regressions


#: ``<base>_workersN`` sample names, as the engine bench writes them.
WORKERS_RE = re.compile(r"^(?P<base>.+)_workers(?P<n>\d+)$")

#: Default parallel-speedup requirements (see ``check_speedup``).
MIN_SPEEDUP = 1.5
LOW_CPU_FLOOR = 0.15
SPEEDUP_CPUS = 4


def worker_families(doc: Dict) -> Dict[str, Dict[int, Dict]]:
    """Group ``<base>_workersN`` samples: ``base -> {N: sample}``."""
    families: Dict[str, Dict[int, Dict]] = {}
    for bench, metrics in doc.items():
        match = WORKERS_RE.match(bench)
        if match is None or not isinstance(metrics, dict):
            continue
        families.setdefault(match.group("base"), {})[
            int(match.group("n"))] = metrics
    return families


def check_speedup(doc: Dict, min_speedup: float = MIN_SPEEDUP,
                  low_cpu_floor: float = LOW_CPU_FLOOR,
                  speedup_cpus: int = SPEEDUP_CPUS
                  ) -> Tuple[List[str], List[str]]:
    """Gate every N-vs-1 worker pair in one bench document.

    Returns ``(report_lines, failures)``.  A pair is held to
    ``min_speedup`` when its sample records ``cpu_count >= speedup_cpus``
    and to ``low_cpu_floor`` otherwise — a host that cannot run N shards
    concurrently can only prove the absence of a dispatch pessimization,
    not the presence of scaling.
    """
    lines: List[str] = []
    failures: List[str] = []
    for base, by_workers in sorted(worker_families(doc).items()):
        baseline = by_workers.get(1, {}).get("records_per_second")
        if not baseline:
            continue
        for n in sorted(by_workers):
            if n == 1:
                continue
            sample = by_workers[n]
            rps = sample.get("records_per_second")
            if not isinstance(rps, (int, float)):
                continue
            cpus = sample.get("cpu_count", 0)
            constrained = cpus < speedup_cpus
            required = low_cpu_floor if constrained else min_speedup
            ratio = float(rps) / float(baseline)
            note = (f"cpu_count={cpus} < {speedup_cpus}: "
                    f"no-pessimization floor" if constrained
                    else f"cpu_count={cpus}")
            entry = (f"{base}: workers{n}/workers1 = {ratio:.2f}x "
                     f"(required >= {required:.2f}x; {note})")
            if ratio < required:
                failures.append(entry)
                lines.append(f"  FAIL     {entry}")
            else:
                lines.append(f"  ok       {entry}")
    return lines, failures


#: Default columnar-substrate requirements (see ``check_columnar``).
MIN_COLUMNAR_SPEEDUP = 3.0
MAX_BYTES_RATIO = 0.5
MIN_ROWGROUP_RATIO = 0.9
MAX_ROWGROUP_PEAK_FRACTION = 0.5


def check_columnar(doc: Dict, min_speedup: float = MIN_COLUMNAR_SPEEDUP,
                   max_bytes_ratio: float = MAX_BYTES_RATIO,
                   min_rowgroup_ratio: float = MIN_ROWGROUP_RATIO,
                   max_rowgroup_peak_fraction: float =
                   MAX_ROWGROUP_PEAK_FRACTION
                   ) -> Tuple[List[str], List[str]]:
    """Gate every columnar sample in a ``BENCH_datasets.json`` document.

    Returns ``(report_lines, failures)``.  A sample participates when it
    records both ``object_replay_rps`` and ``columnar_replay_rps``; the
    bytes-per-row bound additionally needs both ``*_bytes_per_row``
    fields, the out-of-core bounds need ``rowgroup_replay_rps`` and
    ``rowgroup_peak_bytes_per_row``.  Samples missing the fields are
    skipped, not failed, so the file can host unrelated dataset metrics.
    """
    lines: List[str] = []
    failures: List[str] = []
    for bench, metrics in sorted(doc.items()):
        if not isinstance(metrics, dict):
            continue
        object_rps = metrics.get("object_replay_rps")
        columnar_rps = metrics.get("columnar_replay_rps")
        if isinstance(object_rps, (int, float)) and object_rps > 0 \
                and isinstance(columnar_rps, (int, float)):
            ratio = float(columnar_rps) / float(object_rps)
            entry = (f"{bench}: columnar/object replay = {ratio:.2f}x "
                     f"(required >= {min_speedup:.2f}x)")
            if ratio < min_speedup:
                failures.append(entry)
                lines.append(f"  FAIL     {entry}")
            else:
                lines.append(f"  ok       {entry}")
        jsonl_bpr = metrics.get("jsonl_bytes_per_row")
        columnar_bpr = metrics.get("columnar_bytes_per_row")
        if isinstance(jsonl_bpr, (int, float)) and jsonl_bpr > 0 \
                and isinstance(columnar_bpr, (int, float)):
            ratio = float(columnar_bpr) / float(jsonl_bpr)
            entry = (f"{bench}: columnar/jsonl bytes per row = {ratio:.3f} "
                     f"(required <= {max_bytes_ratio:.2f})")
            if ratio > max_bytes_ratio:
                failures.append(entry)
                lines.append(f"  FAIL     {entry}")
            else:
                lines.append(f"  ok       {entry}")
        rowgroup_rps = metrics.get("rowgroup_replay_rps")
        if isinstance(columnar_rps, (int, float)) and columnar_rps > 0 \
                and isinstance(rowgroup_rps, (int, float)):
            ratio = float(rowgroup_rps) / float(columnar_rps)
            entry = (f"{bench}: rowgroup/columnar replay = {ratio:.2f}x "
                     f"(required >= {min_rowgroup_ratio:.2f}x)")
            if ratio < min_rowgroup_ratio:
                failures.append(entry)
                lines.append(f"  FAIL     {entry}")
            else:
                lines.append(f"  ok       {entry}")
        resident_bpr = metrics.get("columnar_resident_bytes_per_row")
        peak_bpr = metrics.get("rowgroup_peak_bytes_per_row")
        if isinstance(resident_bpr, (int, float)) and resident_bpr > 0 \
                and isinstance(peak_bpr, (int, float)):
            fraction = float(peak_bpr) / float(resident_bpr)
            entry = (f"{bench}: rowgroup peak/resident bytes per row = "
                     f"{fraction:.3f} (required <= "
                     f"{max_rowgroup_peak_fraction:.2f})")
            if fraction > max_rowgroup_peak_fraction:
                failures.append(entry)
                lines.append(f"  FAIL     {entry}")
            else:
                lines.append(f"  ok       {entry}")
    return lines, failures


#: Default live-telemetry overhead bound (see ``check_obs_overhead``).
MAX_OBS_OVERHEAD = 0.05


def check_obs_overhead(doc: Dict, max_overhead: float = MAX_OBS_OVERHEAD
                       ) -> Tuple[List[str], List[str]]:
    """Gate live-telemetry overhead samples (``BENCH_obs.json``).

    Returns ``(report_lines, failures)``.  A sample participates when it
    records both ``live_off_rps`` and ``live_on_rps``; the heartbeat
    plane must keep ``on/off >= 1 - max_overhead`` (default: at most a
    5% throughput cost).  Samples missing the pair are skipped, so the
    file can host the other obs benchmarks untouched.
    """
    lines: List[str] = []
    failures: List[str] = []
    floor = 1.0 - max_overhead
    for bench, metrics in sorted(doc.items()):
        if not isinstance(metrics, dict):
            continue
        off_rps = metrics.get("live_off_rps")
        on_rps = metrics.get("live_on_rps")
        if not (isinstance(off_rps, (int, float)) and off_rps > 0
                and isinstance(on_rps, (int, float))):
            continue
        ratio = float(on_rps) / float(off_rps)
        entry = (f"{bench}: live-on/live-off = {ratio:.3f} "
                 f"(required >= {floor:.3f}, i.e. <= "
                 f"{max_overhead:.0%} overhead)")
        if ratio < floor:
            failures.append(entry)
            lines.append(f"  FAIL     {entry}")
        else:
            lines.append(f"  ok       {entry}")
    return lines, failures


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", type=Path, help="baseline BENCH_*.json "
                        "(or the sole file with --check-speedup)")
    parser.add_argument("new", type=Path, nargs="?", default=None,
                        help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional drop (default 0.25)")
    parser.add_argument("--check-speedup", action="store_true",
                        help="also gate <base>_workersN/_workers1 ratios "
                        "in the candidate (or sole) file")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help=f"required N-vs-1 speedup on hosts with "
                        f">= --speedup-cpus cores (default {MIN_SPEEDUP})")
    parser.add_argument("--low-cpu-floor", type=float,
                        default=LOW_CPU_FLOOR,
                        help=f"required ratio on CPU-starved hosts "
                        f"(default {LOW_CPU_FLOOR})")
    parser.add_argument("--speedup-cpus", type=int, default=SPEEDUP_CPUS,
                        help=f"cores needed before the full speedup gate "
                        f"applies (default {SPEEDUP_CPUS})")
    parser.add_argument("--check-columnar", action="store_true",
                        help="also gate columnar replay speedup and "
                        "bytes/row ratio in the candidate (or sole) file")
    parser.add_argument("--min-columnar-speedup", type=float,
                        default=MIN_COLUMNAR_SPEEDUP,
                        help=f"required columnar/object replay throughput "
                        f"ratio (default {MIN_COLUMNAR_SPEEDUP})")
    parser.add_argument("--max-bytes-ratio", type=float,
                        default=MAX_BYTES_RATIO,
                        help=f"max columnar/jsonl bytes-per-row ratio "
                        f"(default {MAX_BYTES_RATIO})")
    parser.add_argument("--min-rowgroup-ratio", type=float,
                        default=MIN_ROWGROUP_RATIO,
                        help=f"required rowgroup/columnar replay "
                        f"throughput ratio (default {MIN_ROWGROUP_RATIO})")
    parser.add_argument("--max-rowgroup-peak-fraction", type=float,
                        default=MAX_ROWGROUP_PEAK_FRACTION,
                        help=f"max streaming-peak/resident bytes-per-row "
                        f"fraction (default {MAX_ROWGROUP_PEAK_FRACTION})")
    parser.add_argument("--check-obs-overhead", action="store_true",
                        help="also gate live_on_rps/live_off_rps pairs "
                        "in the candidate (or sole) file")
    parser.add_argument("--max-obs-overhead", type=float,
                        default=MAX_OBS_OVERHEAD,
                        help=f"max fractional throughput cost of the live "
                        f"heartbeat plane (default {MAX_OBS_OVERHEAD})")
    args = parser.parse_args(argv)

    failed = False
    candidate_path = args.new if args.new is not None else args.old
    if args.new is not None:
        old = json.loads(args.old.read_text())
        new = json.loads(args.new.read_text())
        lines, regressions = compare(old, new, args.threshold)
        print(f"comparing {args.old} -> {args.new} "
              f"(threshold -{args.threshold:.0%})")
        for line in lines:
            print(line)
        if regressions:
            print(f"\n{len(regressions)} throughput regression(s):")
            for entry in regressions:
                print(f"  {entry}")
            failed = True
        else:
            print("\nno throughput regressions")
    elif not (args.check_speedup or args.check_columnar
              or args.check_obs_overhead):
        parser.error("a candidate file, --check-speedup, --check-columnar "
                     "or --check-obs-overhead is required")

    if args.check_speedup:
        candidate = json.loads(Path(candidate_path).read_text())
        lines, failures = check_speedup(candidate, args.min_speedup,
                                        args.low_cpu_floor,
                                        args.speedup_cpus)
        print(f"speedup gate on {candidate_path} "
              f"(>= {args.min_speedup:.2f}x at {args.speedup_cpus}+ CPUs, "
              f">= {args.low_cpu_floor:.2f}x below)")
        for line in lines:
            print(line)
        if failures:
            print(f"\n{len(failures)} speedup gate failure(s)")
            failed = True
        elif lines:
            print("\nspeedup gate passed")
        else:
            print("\nno workersN/workers1 pairs found")

    if args.check_columnar:
        candidate = json.loads(Path(candidate_path).read_text())
        lines, failures = check_columnar(candidate,
                                         args.min_columnar_speedup,
                                         args.max_bytes_ratio,
                                         args.min_rowgroup_ratio,
                                         args.max_rowgroup_peak_fraction)
        print(f"columnar gate on {candidate_path} "
              f"(replay >= {args.min_columnar_speedup:.2f}x, "
              f"bytes/row <= {args.max_bytes_ratio:.2f}x, "
              f"rowgroup >= {args.min_rowgroup_ratio:.2f}x, "
              f"peak fraction <= {args.max_rowgroup_peak_fraction:.2f})")
        for line in lines:
            print(line)
        if failures:
            print(f"\n{len(failures)} columnar gate failure(s)")
            failed = True
        elif lines:
            print("\ncolumnar gate passed")
        else:
            print("\nno columnar samples found")

    if args.check_obs_overhead:
        candidate = json.loads(Path(candidate_path).read_text())
        lines, failures = check_obs_overhead(candidate,
                                             args.max_obs_overhead)
        print(f"obs overhead gate on {candidate_path} "
              f"(live plane <= {args.max_obs_overhead:.0%} "
              f"throughput cost)")
        for line in lines:
            print(line)
        if failures:
            print(f"\n{len(failures)} obs overhead gate failure(s)")
            failed = True
        elif lines:
            print("\nobs overhead gate passed")
        else:
            print("\nno live overhead samples found")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
