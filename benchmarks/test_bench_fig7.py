"""Figure 7 — mapping quality vs ECS source prefix length, CDN-2.

Paper: CDN-2 leverages ECS down to /21 (41–42 distinct edges, good
latency); at /20 and below it returns a single resolver-mapped answer with
scope 0 and mapping quality collapses.
"""

from repro.analysis import crossover_prefix_length, measure_mapping_quality
from repro.analysis.mapping_quality import MappingQualityLab

PREFIX_LENGTHS = tuple(range(16, 25))


def test_bench_fig7_cdn2(benchmark, save_report):
    lab = MappingQualityLab.build(probe_count=200, seed=42)
    series = benchmark.pedantic(
        lambda: measure_mapping_quality(lab, lab.cdn2, lab.cdn2_qname,
                                        prefix_lengths=PREFIX_LENGTHS),
        rounds=1, iterations=1)
    save_report("fig7_cdn2_prefix_quality",
                series.report("Figure 7 — CDN-2 time-to-connect by prefix "
                              "length") +
                "\npaper: /21..24 equivalent; cliff between /21 and /20; "
                "scope 0 below")

    # /21 through /24 give equivalent quality.
    assert series.median(21) < 2 * series.median(24)
    assert series.median(22) < 2 * series.median(24)
    # The cliff is between /21 and /20.
    assert series.median(20) > 3 * series.median(24)
    assert crossover_prefix_length(series) == 20
    # Distinct answers hold to /21 then collapse to ~1.
    assert series.unique_answers[21] > 10
    assert series.unique_answers[20] <= 3
    # Below the threshold CDN-2 answers with scope 0 (the paper's marker).
    assert series.scopes[20] and all(s == 0 for s in series.scopes[20])
    assert series.scopes[21] and all(s > 0 for s in series.scopes[21])
