"""Section 6.3 — caching behavior of ECS resolvers (twin-query experiment).

Paper: of 203 studied resolvers, 76 are correct, 103 (over half) ignore the
scope entirely, 15 accept/cache prefixes beyond /24, 8 clamp at /22, and 1
emits a private prefix; the one studiable major-public resolver is correct.
The shape: all five categories present, scope-ignoring the largest, and the
public service classified correct.
"""

from repro.analysis import analyze_caching_behavior
from repro.core.classify import CachingCategory


def test_bench_caching_behavior(scan_universe, benchmark, save_report):
    analysis = benchmark.pedantic(
        lambda: analyze_caching_behavior(scan_universe),
        rounds=1, iterations=1)
    save_report("section6_3_caching_behavior", analysis.report())

    counts = analysis.counts()
    for category in (CachingCategory.CORRECT,
                     CachingCategory.IGNORES_SCOPE,
                     CachingCategory.ACCEPTS_OVER_24,
                     CachingCategory.CLAMPS_AT_22,
                     CachingCategory.PRIVATE_PREFIX):
        assert counts.get(category, 0) >= 1, f"missing {category}"

    # Scope-ignoring is the largest class, as in the paper (103 of 203).
    assert analysis.scope_ignoring_majority()
    # The big two dwarf the deviant tail, as in the paper.
    assert counts[CachingCategory.IGNORES_SCOPE] \
        > counts[CachingCategory.ACCEPTS_OVER_24] \
        > counts[CachingCategory.CLAMPS_AT_22] \
        >= counts[CachingCategory.PRIVATE_PREFIX]
    # The major public resolver behaves correctly.
    assert analysis.megadns_report.category is CachingCategory.CORRECT
