"""Micro-benchmarks of the substrate's hot paths.

These are genuine pytest-benchmark timings (many rounds), keeping the
codec, cache and resolution-path costs visible as the library evolves.
"""

from repro.core.cache import ScopeTracker
from repro.dnslib import (A, EcsOption, Message, Name, RecordType,
                          ResourceRecord, decode_message, encode_message)
from repro.measure import StubClient


def _sample_response() -> bytes:
    msg = Message.make_query(Name.from_text("www.example.com"), RecordType.A,
                             msg_id=7,
                             ecs=EcsOption.from_client_address("10.1.2.3"))
    resp = msg.make_response()
    qname = Name.from_text("www.example.com")
    for i in range(4):
        resp.answers.append(ResourceRecord(qname, RecordType.A, 300,
                                           A(f"203.0.113.{i}")))
    resp.set_ecs(msg.ecs().response_to(24))
    return encode_message(resp)


def test_bench_encode_message(benchmark):
    msg = decode_message(_sample_response())
    wire = benchmark(encode_message, msg)
    assert len(wire) > 40


def test_bench_decode_message(benchmark):
    wire = _sample_response()
    msg = benchmark(decode_message, wire)
    assert len(msg.answers) == 4


def test_bench_ecs_option_roundtrip(benchmark):
    opt = EcsOption.from_client_address("198.51.77.9", 24)

    def roundtrip():
        return EcsOption.from_wire(opt.to_wire())

    assert benchmark(roundtrip) == opt


def test_bench_scope_tracker_access(benchmark):
    tracker = ScopeTracker(use_ecs=True)
    clients = [f"10.0.{i}.1" for i in range(64)]

    counter = iter(range(10**9))

    def access():
        i = next(counter)
        return tracker.access(i * 0.01, f"name{i % 50}.", 1,
                              clients[i % 64], 24, 20)

    benchmark(access)
    assert tracker.hits + tracker.misses > 0


def test_bench_full_recursive_resolution(benchmark, scan_universe):
    """One uncached recursive resolution through root → TLD → auth, with
    every hop crossing the wire codec."""
    universe = scan_universe
    client = StubClient(universe.scanner_ip, universe.net)
    compliant = next(s.ip for s in universe.egress_specs
                     if s.policy_name == "compliant")
    counter = iter(range(10**9))

    def resolve():
        i = next(counter)
        return client.query(compliant,
                            f"bench-{i}.scan-exp.example.", RecordType.A)

    result = benchmark(resolve)
    assert result.addresses
