"""Figure 5 — forwarder↔hidden vs forwarder↔recursive distances (non-MP).

Paper, for 217K non-MP combinations: ECS improves the location estimate in
72.7% of combinations, changes nothing in 19.5%, and *worsens* it in 7.8%.
The Chinese Beijing/Shanghai/Guangzhou geometry (≈1000–2000 km offsets)
dominates the structure.
"""

from repro.analysis import analyze_hidden_resolvers, format_table
from repro.datasets import paper_numbers as paper


def test_bench_fig5_nonmp_distances(scan_universe, scan_result, benchmark,
                                    save_report):
    analysis = benchmark.pedantic(
        lambda: analyze_hidden_resolvers(scan_universe, scan_result),
        rounds=1, iterations=1)

    combos = analysis.split(via_megadns=False)
    below, on, above = analysis.fractions(False)
    rows = [("combinations", len(combos)),
            ("hidden farther (below diagonal)", f"{below:.1%}"),
            ("equidistant (on diagonal)", f"{on:.1%}"),
            ("hidden closer (above diagonal)", f"{above:.1%}"),
            ("paper", f"{paper.NONMP_HIDDEN_FARTHER_FRAC:.1%} / "
                      f"{paper.NONMP_EQUIDISTANT_FRAC:.1%} / "
                      f"{paper.NONMP_HIDDEN_CLOSER_FRAC:.1%}")]
    save_report("fig5_nonmp_distances",
                format_table(("metric", "value"), rows,
                             title="Figure 5 — non-MP combinations"))

    assert combos, "non-MP combinations observed"
    assert above > 0.5, "ECS helps in the majority of combinations"
    assert 0.0 < below < 0.3, "but worsens a visible minority"
    assert above > below and above > on
