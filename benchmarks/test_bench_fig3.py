"""Figure 3 — cache hit rate with and without ECS (All-Names replay).

Paper: for the full client population the hit rate drops from ≈76% without
ECS to ≈30% with it — less than half — and the with-ECS curve grows far
more slowly with client population than the without-ECS curve.
"""

from repro.analysis import fig3_series, format_table
from repro.datasets import paper_numbers as paper

FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def test_bench_fig3_hit_rate(allnames_dataset, benchmark, save_report):
    series = benchmark.pedantic(
        lambda: fig3_series(allnames_dataset, fractions=FRACTIONS,
                            seeds=(1, 2, 3)),
        rounds=1, iterations=1)

    rows = [(f"{frac:.0%}", f"{no_ecs:.1%}", f"{with_ecs:.1%}")
            for frac, no_ecs, with_ecs in series]
    text = format_table(("clients", "hit rate (no ECS)", "hit rate (ECS)"),
                        rows, title="Figure 3 — cache hit rate")
    save_report("fig3_hit_rate",
                text + f"\npaper @100%: {paper.FIG3_HIT_RATE_NO_ECS:.0%} "
                       f"without ECS vs {paper.FIG3_HIT_RATE_WITH_ECS:.0%} with")

    _, no_ecs_full, with_ecs_full = series[-1]
    # The headline: ECS cuts the hit rate to less than half.
    assert with_ecs_full < no_ecs_full / 2 + 0.03
    assert 0.6 < no_ecs_full < 0.9, "no-ECS hit rate in the paper's regime"
    assert 0.15 < with_ecs_full < 0.45, "ECS hit rate in the paper's regime"
    # Growth with client population: fast without ECS, slow with.
    growth_no_ecs = series[-1][1] - series[0][1]
    growth_ecs = series[-1][2] - series[0][2]
    assert growth_no_ecs > growth_ecs > -0.05
