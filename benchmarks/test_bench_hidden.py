"""Section 8.2 — hidden resolver discovery and validation.

Paper: ~32K hidden prefixes discovered via ECS (covering neither ingress
nor egress), 29 707 of them (92%) validated against the Public
Resolver/CDN logs.  The shape: ECS-based discovery finds the planted
hidden resolvers and validation against ground truth covers most of them.
"""

from repro.analysis import analyze_hidden_resolvers


def test_bench_hidden_discovery(scan_universe, scan_result, benchmark,
                                save_report):
    analysis = benchmark.pedantic(
        lambda: analyze_hidden_resolvers(scan_universe, scan_result),
        rounds=1, iterations=1)
    save_report("section8_2_hidden", analysis.report())

    assert len(analysis.discovered_prefixes) > 10
    validated_fraction = (len(analysis.validated_prefixes)
                          / len(analysis.discovered_prefixes))
    assert validated_fraction > 0.8, "most discovered prefixes are real"
    # Discovery recall: most planted hidden /24s behind ECS paths appear.
    planted = {c.hidden_ips[0].rsplit(".", 1)[0] + ".0/24"
               for c in scan_universe.chains if c.hidden_ips}
    found = analysis.discovered_prefixes
    recall = len(planted & found) / len(planted)
    assert recall > 0.5
