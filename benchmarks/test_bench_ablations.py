"""Ablations for the design choices DESIGN.md calls out.

* scope-keyed caching (RFC) vs scope-ignoring caching — what the 103
  deviant resolvers trade: cache/hit-rate savings against wrong answers;
* loopback probing vs own-address probing — the paper's recommendation;
* the TTL sweep ablation lives in Figure 1's bench.
"""

from repro.analysis import format_table
from repro.analysis.cache_sim import replay
from repro.analysis.unroutable import UnroutableLab
from repro.core.cache import ScopeTracker
from repro.dnslib import EcsOption, Name, RecordType
from repro.measure import StubClient


def test_bench_ablation_scope_ignoring_cache(allnames_dataset, benchmark,
                                             save_report):
    """Scope-ignoring caches look great on cache metrics — that's *why*
    over half the studied resolvers do it — but every cross-subnet reuse
    is a potentially mis-targeted answer."""

    def run():
        honor = ScopeTracker(use_ecs=True)
        ignore = ScopeTracker(use_ecs=False)
        wrong_reuse = 0
        for r in allnames_dataset.records:
            honor.access(r.ts, r.qname, r.qtype, r.client_ip, r.scope, r.ttl)
            hit = ignore.access(r.ts, r.qname, r.qtype, r.client_ip,
                                r.scope, r.ttl)
            if hit:
                wrong_reuse += 1
        return honor, ignore, wrong_reuse

    honor, ignore, wrong_reuse = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)
    rows = [
        ("hit rate (scope-honoring)", f"{honor.hit_rate():.1%}"),
        ("hit rate (scope-ignoring)", f"{ignore.hit_rate():.1%}"),
        ("peak cache (scope-honoring)", honor.max_size),
        ("peak cache (scope-ignoring)", ignore.max_size),
        ("answers reused across subnets", wrong_reuse),
    ]
    save_report("ablation_scope_ignoring",
                format_table(("metric", "value"), rows,
                             title="Ablation — scope-keyed vs scope-ignoring"
                                   " caching"))
    assert ignore.hit_rate() > honor.hit_rate()
    assert ignore.max_size < honor.max_size
    assert wrong_reuse > honor.hits  # the hidden cost


def test_bench_ablation_probing_address(benchmark, save_report):
    """Loopback probes confuse literal-lookup mappers; probing with the
    resolver's own public address (the paper's recommendation) keeps the
    answer as good as a no-ECS query."""
    lab = UnroutableLab.build()
    client = StubClient(lab.lab_ip, lab.net)

    def measure(ecs):
        result = client.query(lab.cdn.ip, lab.qname, RecordType.A, ecs=ecs)
        return lab.net.ping_ms(lab.lab_ip, result.first_address, 8)

    def run():
        loopback = measure(EcsOption.from_client_address("127.0.0.1", 32))
        own = measure(EcsOption.from_client_address(lab.lab_ip, 24))
        none = measure(None)
        return loopback, own, none

    loopback, own, none = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [("loopback probe RTT (ms)", round(loopback, 1)),
            ("own-address probe RTT (ms)", round(own, 1)),
            ("no-ECS RTT (ms)", round(none, 1))]
    save_report("ablation_probing_address",
                format_table(("probing variant", "value"), rows,
                             title="Ablation — loopback vs own-address"
                                   " probing"))
    assert own < 1.5 * none
    assert loopback > 2 * own
