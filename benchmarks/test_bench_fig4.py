"""Figure 4 — forwarder↔hidden vs forwarder↔recursive distances (MP).

Paper, for the major public (MP) resolver's 725K combinations: in 8% the
hidden resolver is *farther* from the forwarder than the recursive resolver
(ECS actively hurts mapping), 1.3% are equidistant, the rest closer.  The
distances below the diagonal can reach thousands of kilometres.
"""

from repro.analysis import analyze_hidden_resolvers, format_table
from repro.datasets import paper_numbers as paper


def test_bench_fig4_mp_distances(scan_universe, scan_result, benchmark,
                                 save_report):
    analysis = benchmark.pedantic(
        lambda: analyze_hidden_resolvers(scan_universe, scan_result),
        rounds=1, iterations=1)

    combos = analysis.split(via_megadns=True)
    below, on, above = analysis.fractions(True)
    rows = [("combinations", len(combos)),
            ("hidden farther (below diagonal)", f"{below:.1%}"),
            ("equidistant (on diagonal)", f"{on:.1%}"),
            ("hidden closer (above diagonal)", f"{above:.1%}"),
            ("max F-H distance (km)",
             round(max(c.f_h_km for c in combos))),
            ("paper below-diagonal", f"{paper.MP_HIDDEN_FARTHER_FRAC:.1%}")]
    save_report("fig4_mp_distances",
                format_table(("metric", "value"), rows,
                             title="Figure 4 — MP resolver combinations"))

    assert combos, "MP combinations observed"
    assert 0.02 < below < 0.25, "a small below-diagonal population exists"
    assert above > 0.5, "ECS usually helps"
    # The pathological cases are dramatic: thousands of km, like the
    # Santiago-forwarder/Italy-hidden example.
    worst = max((c.f_h_km - c.f_r_km) for c in combos)
    assert worst > 2000
