"""Figure 8 / section 8.4 — the CNAME-flattening pitfall.

Paper: accessing customer.com via its flattened apex cost a 125 ms TCP
handshake to a mis-mapped edge plus an HTTP redirect — ≈650 ms of penalty —
while the www name (regular CNAME, ECS end to end) connected in 45 ms.
The shape: apex handshake ≫ www handshake, a penalty in the hundreds of
milliseconds, and the careful variant (backend ECS forwarding) erasing it.
"""

from repro.analysis import run_flattening_case_study
from repro.analysis.flattening import FlatteningLab


def test_bench_fig8_careless_flattening(benchmark, save_report):
    lab = FlatteningLab.build(forward_ecs=False)
    timings = benchmark.pedantic(lambda: run_flattening_case_study(lab),
                                 rounds=1, iterations=1)
    save_report("fig8_cname_flattening", timings.report())

    # Mis-mapped edge far, correct edge near (paper: 125 ms vs 45 ms).
    assert timings.apex_handshake_ms > 5 * timings.www_handshake_ms
    # The total penalty is hundreds of milliseconds (paper: ≈650 ms).
    assert timings.penalty_ms > 300
    # The www path maps to the client's own city.
    where = lab.topology.city_of(timings.www_edge_ip)
    assert where and where.name == "Santiago"
    # The apex path maps near the DNS provider instead.
    apex_where = lab.topology.city_of(timings.apex_edge_ip)
    assert apex_where and apex_where.name == "Frankfurt"


def test_bench_fig8_careful_flattening_ablation(benchmark, save_report):
    """Ablation: forwarding ECS on the backend resolution removes the
    penalty — the paper's suggested (partial) mitigation."""
    lab = FlatteningLab.build(forward_ecs=True)
    timings = benchmark.pedantic(lambda: run_flattening_case_study(lab),
                                 rounds=1, iterations=1)
    save_report("fig8_careful_ablation",
                timings.report("Figure 8 ablation — ECS-forwarding provider"))
    assert timings.apex_handshake_ms <= 2 * timings.www_handshake_ms
