"""Section 9 extension — whitelisted vs non-whitelisted resolvers.

Reproduces the tradeoff the related work quantifies (Chen et al.: ECS
improved public-resolver latencies ~50% at the cost of ~8× authoritative
query volume) and the paper's section 7 cache cost, in one controlled
experiment: identical twin resolvers, one whitelisted at the CDN.
"""

from repro.analysis import run_whitelist_comparison


def test_bench_whitelist_comparison(benchmark, save_report):
    comparison = benchmark.pedantic(
        lambda: run_whitelist_comparison(seed=42, clients_per_city=5,
                                         rounds=8),
        rounds=1, iterations=1)
    save_report("section9_whitelist_comparison", comparison.report())

    # ECS improves mapping for far-away clients dramatically.
    assert comparison.latency_improvement > 0.4
    assert comparison.whitelisted.mean_connect_ms \
        < comparison.plain.mean_connect_ms / 2
    # ...at the cost of more authoritative queries and more cache.
    assert comparison.query_amplification > 2.0
    assert comparison.cache_amplification > 2.0
    assert comparison.whitelisted.cache_hit_rate \
        < comparison.plain.cache_hit_rate
