"""Privacy and security extensions: probing-strategy leakage and the
ECS-targeted poisoning blast radius (sections 2 and 6.1 discussions).
"""

from repro.analysis import (compare_blast_radius, poisoning_report,
                            run_privacy_study)


def test_bench_privacy_leakage(benchmark, save_report):
    study = benchmark.pedantic(lambda: run_privacy_study(seed=42),
                               rounds=1, iterations=1)
    save_report("privacy_leakage", study.report())

    by = study.by_strategy()
    # The paper's critique: indiscriminate ECS wastes most of its leakage
    # on servers that never use it.
    assert by["always_ecs"].wasted_leak_fraction > 0.5
    # The recommendation achieves discovery with zero client leakage.
    assert by["recommended_own_address"].client_bits_to_plain_servers == 0
    assert by["recommended_own_address"].ecs_to_ecs_servers > 0
    # Whitelisting leaks only where it pays.
    assert by["domain_whitelist"].wasted_leak_fraction == 0.0


def test_bench_poisoning_blast_radius(benchmark, save_report):
    outcomes = benchmark.pedantic(compare_blast_radius, rounds=1,
                                  iterations=1)
    save_report("poisoning_blast_radius", poisoning_report(outcomes))

    honor, ignore = outcomes
    # Compliant caches confine a targeted forgery to the victim prefix,
    # invisible to off-prefix monitors (Kintis et al.'s stealth concern)...
    assert honor.victim_fraction == 1.0
    assert honor.collateral_fraction == 0.0
    assert not honor.monitor_visible
    # ...while scope-ignoring caches amplify it resolver-wide.
    assert ignore.collateral_fraction == 1.0
