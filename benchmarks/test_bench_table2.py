"""Table 2 — authoritative responses to unroutable ECS prefixes.

Paper: from a Cleveland lab machine, no-ECS and own-/24 queries map to a
nearby edge (Chicago, 35 ms), while 127.0.0.1/32, 127.0.0.0/24 and
169.254.252.0/24 map across the globe (Switzerland 155 ms, Mountain View
47 ms, South Africa 285 ms), with disjoint answer sets.  The shape: same
near/far split, same set relations, and the RFC fallback policy removing
the penalty.
"""

import statistics

from repro.analysis import run_table2
from repro.analysis.unroutable import UnroutableLab
from repro.auth import UnroutablePolicy

UNROUTABLE = ("127.0.0.1/32", "127.0.0.0/24", "169.254.252.0/24")


def test_bench_table2(benchmark, save_report):
    lab = UnroutableLab.build()
    table = benchmark.pedantic(lambda: run_table2(lab),
                               rounds=1, iterations=1)
    save_report("table2_unroutable", table.report())

    near_rtt = table.row("none").rtt_ms
    assert near_rtt < 40, "routable queries map nearby"
    assert table.row("/24 of src addr").rtt_ms < 40
    # Same 16-address set for both routable variants, as the paper saw.
    assert table.routable_answers_identical
    # Unroutable prefixes map elsewhere: disjoint sets, heavy penalty.
    assert table.unroutable_answers_disjoint
    unroutable_rtts = [table.row(p).rtt_ms for p in UNROUTABLE]
    assert max(unroutable_rtts) > 3 * near_rtt
    assert statistics.mean(unroutable_rtts) > 1.5 * near_rtt
    locations = {table.row(p).location for p in UNROUTABLE}
    assert table.row("none").location not in locations


def test_bench_table2_rfc_fallback(benchmark, save_report):
    """Ablation: the RFC's SHOULD (treat unroutable as the resolver's own
    identity) removes the mis-mapping entirely."""
    lab = UnroutableLab.build(unroutable_policy=UnroutablePolicy.USE_RESOLVER)
    table = benchmark.pedantic(lambda: run_table2(lab),
                               rounds=1, iterations=1)
    save_report("table2_rfc_fallback", table.report())
    near = table.row("none")
    for prefix in UNROUTABLE:
        assert table.row(prefix).location == near.location
        assert table.row(prefix).rtt_ms < 40
