"""Section 4 — dataset summary statistics.

Regenerates the four datasets and prints the paper-vs-measured summary
counts (scaled by the generators' scale factors).
"""

from repro.analysis import (summarize_allnames, summarize_cdn,
                            summarize_public_cdn, summarize_scan)
from repro.datasets import AllNamesBuilder, CdnDatasetBuilder


def test_bench_cdn_dataset_generation(benchmark, save_report):
    dataset = benchmark.pedantic(
        lambda: CdnDatasetBuilder(scale=0.01, seed=7,
                                  duration_s=2 * 3600.0).build(),
        rounds=1, iterations=1)
    save_report("section4_cdn", summarize_cdn(dataset))
    ecs_fraction = sum(r.has_ecs for r in dataset.records) / len(dataset.records)
    # Paper: 847M of 1.5B queries carry ECS (≈56%); assert same regime.
    assert 0.3 < ecs_fraction < 0.9


def test_bench_allnames_generation(benchmark, save_report):
    dataset = benchmark.pedantic(
        lambda: AllNamesBuilder(scale=0.3, seed=7).build(),
        rounds=1, iterations=1)
    save_report("section4_allnames", summarize_allnames(dataset))
    assert len(dataset.records) > 10_000
    assert len({r.client_ip for r in dataset.records}) > 100


def test_bench_scan_summary(scan_universe, scan_result, benchmark,
                            save_report):
    def summarize():
        return summarize_scan(scan_result)

    text = benchmark.pedantic(summarize, rounds=1, iterations=1)
    save_report("section4_scan", text)
    # The ECS-ingress fraction lands in the paper's regime (1.53M / 2.74M).
    ecs_fraction = len(scan_result.ecs_ingress) / \
        len(scan_result.responding_ingress)
    assert 0.35 < ecs_fraction < 0.95


def test_bench_public_cdn_summary(public_cdn_dataset, benchmark,
                                  save_report):
    text = benchmark.pedantic(lambda: summarize_public_cdn(public_cdn_dataset),
                              rounds=1, iterations=1)
    save_report("section4_public_cdn", text)
    assert all(r.scope > 0 for r in public_cdn_dataset.records[:1000])
