"""Section 4 — dataset summary statistics and the columnar substrate.

Regenerates the four datasets and prints the paper-vs-measured summary
counts (scaled by the generators' scale factors).  The columnar
benchmarks time three replay pipelines over the same trace — JSONL
parse → record objects → ``replay_partial_batched``, mmap'd columns →
``replay_partial_columns``, and the out-of-core v2 row-group stream →
``replay_partial_column_groups`` — assert identical results, and record
throughput, on-disk/resident bytes per row, and the streaming replay's
peak heap per row into ``BENCH_datasets.json`` (gated by
``compare_bench.py --check-columnar``).
"""

from __future__ import annotations

import os
import time
import tracemalloc

from repro.analysis import (summarize_allnames, summarize_cdn,
                            summarize_public_cdn, summarize_scan)
from repro.analysis.cache_sim import (replay_partial_batched,
                                      replay_partial_column_groups,
                                      replay_partial_columns)
from repro.datasets import AllNamesBuilder, CdnDatasetBuilder
from repro.datasets.columnar import (ColumnarStore, RowGroupReader,
                                     write_columnar, write_columnar_stream)
from repro.datasets.records import read_jsonl, write_jsonl

#: Group budget of the out-of-core samples: small enough that several
#: groups exist at bench scale, large enough to amortize per-group setup.
ROW_GROUP_ROWS = 32_768


def test_bench_cdn_dataset_generation(benchmark, save_report):
    dataset = benchmark.pedantic(
        lambda: CdnDatasetBuilder(scale=0.01, seed=7,
                                  duration_s=2 * 3600.0).build(),
        rounds=1, iterations=1)
    save_report("section4_cdn", summarize_cdn(dataset))
    ecs_fraction = sum(r.has_ecs for r in dataset.records) / len(dataset.records)
    # Paper: 847M of 1.5B queries carry ECS (≈56%); assert same regime.
    assert 0.3 < ecs_fraction < 0.9


def test_bench_allnames_generation(benchmark, save_report):
    dataset = benchmark.pedantic(
        lambda: AllNamesBuilder(scale=0.3, seed=7).build(),
        rounds=1, iterations=1)
    save_report("section4_allnames", summarize_allnames(dataset))
    assert len(dataset.records) > 10_000
    assert len({r.client_ip for r in dataset.records}) > 100


def test_bench_scan_summary(scan_universe, scan_result, benchmark,
                            save_report):
    def summarize():
        return summarize_scan(scan_result)

    text = benchmark.pedantic(summarize, rounds=1, iterations=1)
    save_report("section4_scan", text)
    # The ECS-ingress fraction lands in the paper's regime (1.53M / 2.74M).
    ecs_fraction = len(scan_result.ecs_ingress) / \
        len(scan_result.responding_ingress)
    assert 0.35 < ecs_fraction < 0.95


def test_bench_public_cdn_summary(public_cdn_dataset, benchmark,
                                  save_report):
    text = benchmark.pedantic(lambda: summarize_public_cdn(public_cdn_dataset),
                              rounds=1, iterations=1)
    save_report("section4_public_cdn", text)
    assert all(r.scope > 0 for r in public_cdn_dataset.records[:1000])


# ---------------------------------------------------------------------------
# Columnar substrate: replay throughput and storage density per format.


def _resident_object_bytes(path, record_type) -> int:
    """Peak allocation of materializing the trace as record objects."""
    tracemalloc.start()
    records = read_jsonl(path, record_type)
    size, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del records
    return size


def _bench_columnar_case(datasets_bench, name, records, client_field,
                         tmp_path) -> None:
    record_type = type(records[0])
    jsonl_path = tmp_path / f"{name}.jsonl"
    col_path = tmp_path / f"{name}.col"
    write_jsonl(records, jsonl_path)
    write_columnar(records, col_path, name)
    rows = len(records)

    # Object pipeline: parse JSONL into record objects, then replay.
    start = time.perf_counter()
    parsed = read_jsonl(jsonl_path, record_type)
    object_partial = replay_partial_batched(parsed, client_field)
    object_seconds = time.perf_counter() - start

    # Columnar pipeline: map the file, replay straight off the columns.
    start = time.perf_counter()
    with ColumnarStore.open(col_path) as store:
        columnar_partial = replay_partial_columns(store, client_field)
        columnar_seconds = time.perf_counter() - start
        resident_columnar = store.nbytes

    assert columnar_partial == object_partial

    # Out-of-core pipeline: stream v2 row groups, one resident at a
    # time.  Timed without tracemalloc (it hooks every allocation and
    # would bias the rps against the untraced columnar sample), then a
    # second pass measures the peak heap the streaming replay needs.
    v2_path = tmp_path / f"{name}.v2.col"
    write_columnar_stream(records, v2_path, name, ROW_GROUP_ROWS)

    def _replay_groups():
        with RowGroupReader(v2_path) as reader:
            return replay_partial_column_groups(
                (reader.group(i) for i in range(reader.group_count)),
                client_field)

    start = time.perf_counter()
    rowgroup_partial = _replay_groups()
    rowgroup_seconds = time.perf_counter() - start
    assert rowgroup_partial == object_partial
    tracemalloc.start()
    assert _replay_groups() == object_partial
    rowgroup_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    object_rps = rows / object_seconds if object_seconds else 0.0
    columnar_rps = rows / columnar_seconds if columnar_seconds else 0.0
    rowgroup_rps = rows / rowgroup_seconds if rowgroup_seconds else 0.0
    speedup = columnar_rps / object_rps if object_rps else 0.0
    jsonl_bpr = jsonl_path.stat().st_size / rows
    columnar_bpr = col_path.stat().st_size / rows
    datasets_bench[name] = {
        "rows": rows,
        "object_replay_rps": round(object_rps, 1),
        "columnar_replay_rps": round(columnar_rps, 1),
        "columnar_speedup": round(speedup, 2),
        "jsonl_bytes_per_row": round(jsonl_bpr, 2),
        "columnar_bytes_per_row": round(columnar_bpr, 2),
        "bytes_ratio": round(columnar_bpr / jsonl_bpr, 3),
        "object_resident_bytes_per_row": round(
            _resident_object_bytes(jsonl_path, record_type) / rows, 1),
        "columnar_resident_bytes_per_row": round(resident_columnar / rows,
                                                 1),
        "rowgroup_replay_rps": round(rowgroup_rps, 1),
        "rowgroup_ratio": round(rowgroup_rps / columnar_rps
                                if columnar_rps else 0.0, 3),
        "row_group_rows": ROW_GROUP_ROWS,
        "rowgroup_peak_bytes_per_row": round(rowgroup_peak / rows, 1),
        "cpu_count": os.cpu_count() or 1,
    }
    # The acceptance bars this PR ships under: ≥3x replay throughput,
    # ≤0.5x on-disk bytes per row.  Keep them in-bench so a regression
    # fails here even before the compare_bench gate sees the JSON.
    assert speedup >= 3.0, datasets_bench[name]
    assert columnar_bpr / jsonl_bpr <= 0.5, datasets_bench[name]
    # Out-of-core bars: group streaming costs <= 10% replay throughput
    # and its peak heap stays group-sized, far under the full columns.
    assert rowgroup_rps >= 0.9 * columnar_rps, datasets_bench[name]
    assert rowgroup_peak / rows <= 0.5 * resident_columnar / rows, \
        datasets_bench[name]


def test_bench_columnar_replay_allnames(allnames_dataset, datasets_bench,
                                        tmp_path):
    _bench_columnar_case(datasets_bench, "allnames",
                         list(allnames_dataset.records), "client_ip",
                         tmp_path)


def test_bench_columnar_replay_public_cdn(public_cdn_dataset, datasets_bench,
                                          tmp_path):
    _bench_columnar_case(datasets_bench, "public-cdn",
                         list(public_cdn_dataset.records), "ecs_address",
                         tmp_path)
