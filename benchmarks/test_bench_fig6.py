"""Figure 6 — mapping quality vs ECS source prefix length, CDN-1.

Paper: with /24 prefixes, CDN-1's authoritative returns 400 distinct edges
and good latency; at /23 and below the distinct answers collapse to 5–14
and the time-to-connect CDF degrades enormously — CDN-1 does not use ECS
below /24 at all.
"""

from repro.analysis import crossover_prefix_length, measure_mapping_quality
from repro.analysis.mapping_quality import MappingQualityLab

PREFIX_LENGTHS = tuple(range(16, 25))


def test_bench_fig6_cdn1(benchmark, save_report):
    lab = MappingQualityLab.build(probe_count=200, seed=42)
    series = benchmark.pedantic(
        lambda: measure_mapping_quality(lab, lab.cdn1, lab.cdn1_qname,
                                        prefix_lengths=PREFIX_LENGTHS),
        rounds=1, iterations=1)
    save_report("fig6_cdn1_prefix_quality",
                series.report("Figure 6 — CDN-1 time-to-connect by prefix "
                              "length") +
                "\npaper: cliff between /24 and /23; 400 vs 5-14 edges")

    # The cliff sits exactly between 24 and 23.
    assert series.median(23) > 3 * series.median(24)
    assert crossover_prefix_length(series) == 23
    # Below the cliff nothing changes further (flat bad region).
    assert series.median(16) < 2 * series.median(23)
    # Distinct answers collapse.
    assert series.unique_answers[24] > 10
    assert all(series.unique_answers[L] <= 3 for L in range(16, 24))
