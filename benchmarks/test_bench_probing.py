"""Section 6.1 — ECS probing strategies.

Paper: of 4 147 ECS-enabled non-whitelisted resolvers, 3 382 send ECS on
100% of A/AAAA queries, 258 probe designated hostnames with caching
disabled, 32 send loopback probes at 30-minute multiples, 88 probe on cache
misses, and 387 show no discernible pattern; 15 resolvers send ECS to the
root servers.  The shape: the same five classes, in the same order, and a
classifier that recovers the generator's ground truth.
"""

from repro.analysis import analyze_probing, analyze_root_violations
from repro.core.classify import ProbingCategory
from repro.datasets.ditl import generate_root_trace


def test_bench_probing_classification(cdn_dataset, benchmark, save_report):
    analysis = benchmark.pedantic(lambda: analyze_probing(cdn_dataset),
                                  rounds=1, iterations=1)
    save_report("section6_1_probing", analysis.report())

    counts = analysis.counts
    assert analysis.accuracy >= 0.95
    # Order of class sizes matches the paper:
    assert counts[ProbingCategory.ALWAYS_ECS] \
        > counts[ProbingCategory.MIXED] \
        > counts[ProbingCategory.HOSTNAME_PROBES] \
        > counts[ProbingCategory.HOSTNAMES_ON_MISS] \
        >= counts[ProbingCategory.INTERVAL_LOOPBACK]
    # ALWAYS dominates with roughly the paper's share (3382/4147 ≈ 82%).
    always_share = counts[ProbingCategory.ALWAYS_ECS] / analysis.total_resolvers
    assert 0.6 < always_share < 0.95


def test_bench_root_ecs_violations(benchmark, save_report):
    trace = generate_root_trace(resolver_count=400, violators=15, seed=42)
    analysis = benchmark.pedantic(lambda: analyze_root_violations(trace),
                                  rounds=1, iterations=1)
    save_report("section6_1_root_violations", analysis.report())
    assert analysis.violators_found == 15
