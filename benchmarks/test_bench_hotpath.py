"""Hot-path fast-lane benchmarks: reference vs fast records/sec.

Each benchmark times one per-query hot path both ways — the readable
``ipaddress``/callable/uncached reference and the integer-native/batched/
cached fast lane — over the same inputs, asserts the results agree, and
records before-vs-after throughput into ``benchmarks/results/
BENCH_hotpath.json`` via the ``hotpath_bench`` fixture.  The equivalence
contract itself (random inputs, edge bits) lives in
``tests/test_fastpath_equivalence.py``; here identical output is asserted
once more at bench scale, then throughput is measured.

Scale with ``HOTPATH_BENCH_SCALE`` (default 1.0; CI smoke uses 0.1).
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.analysis.cache_sim import replay_partial, replay_partial_batched
from repro.datasets.allnames import AllNamesBuilder
from repro.dnslib import (EcsOption, EdnsInfo, Message, Name, Question,
                          RecordType, decode_message, encode_message)
from repro.dnslib.edns import clear_options_cache
from repro.dnslib.wire import clear_codec_caches
from repro.net.addr import parse_addr, prefix_key, prefix_key_int

SCALE = float(os.environ.get("HOTPATH_BENCH_SCALE", "1.0"))


def _rate(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else 0.0


def _record(hotpath_bench, name: str, records: int,
            ref_seconds: float, fast_seconds: float) -> None:
    ref_rps = _rate(records, ref_seconds)
    fast_rps = _rate(records, fast_seconds)
    hotpath_bench[name] = {
        "records": records,
        "reference_rps": round(ref_rps, 1),
        "fast_rps": round(fast_rps, 1),
        "speedup": round(fast_rps / ref_rps, 2) if ref_rps else 0.0,
    }


# ---------------------------------------------------------------------------
# 1. prefix keying


@pytest.mark.hotpath
def test_hotpath_prefix_keying(hotpath_bench):
    """parse_addr + prefix_key_int vs the ipaddress-based prefix_key."""
    rng = random.Random(7)
    # A realistic client mix: many repeats (trace locality), some v6.
    pool = [f"100.{rng.randrange(64, 112)}.{rng.randrange(6)}."
            f"{rng.randrange(1, 255)}" for _ in range(1800)]
    pool += [f"2610:{rng.randrange(48):x}::{rng.randrange(1, 9):x}"
             for _ in range(200)]
    addrs = pool * max(1, round(25 * SCALE))
    bits_of = {4: 24, 6: 48}

    start = time.perf_counter()
    ref = [prefix_key(a, bits_of[4 if ":" not in a else 6]) for a in addrs]
    ref_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = []
    append = fast.append
    for a in addrs:
        version, value = parse_addr(a)
        append(prefix_key_int(version, value, bits_of[version]))
    fast_seconds = time.perf_counter() - start

    assert fast == ref          # interchangeable as dict keys
    _record(hotpath_bench, "prefix_keying", len(addrs),
            ref_seconds, fast_seconds)
    # The acceptance bar: the integer fast lane must be >= 2x the
    # reference (measured ~10-17x in development).
    assert hotpath_bench["prefix_keying"]["speedup"] >= 2.0


# ---------------------------------------------------------------------------
# 2. wire round-trip


def _ecs_query(qname: str, client: str) -> Message:
    msg = Message(msg_id=4242)
    msg.question = Question(Name.from_text(qname), RecordType.A)
    msg.edns = EdnsInfo(options=[EcsOption.from_client_address(client, 24)])
    return msg


@pytest.mark.hotpath
def test_hotpath_wire_roundtrip(hotpath_bench):
    """Encode/decode with warm codec caches vs cold-per-message encoding.

    The reference run clears the qname/OPT encode caches before every
    message — the pre-cache behavior, where each encode redoes the label
    walk and option serialization.  The fast run reuses warm caches, the
    steady state of a simulation sending the same qnames and client
    prefixes repeatedly.
    """
    rng = random.Random(11)
    qnames = [f"h{i}.s{i % 19:05d}.com." for i in range(60)]
    clients = [f"100.{rng.randrange(64, 112)}.{rng.randrange(6)}.0"
               for _ in range(40)]
    n = max(200, round(6000 * SCALE))
    messages = [_ecs_query(qnames[i % len(qnames)],
                           clients[i % len(clients)]) for i in range(n)]

    clear_codec_caches()
    clear_options_cache()
    start = time.perf_counter()
    ref_wires = []
    for msg in messages:
        clear_codec_caches()
        clear_options_cache()
        ref_wires.append(encode_message(msg))
    ref_seconds = time.perf_counter() - start

    clear_codec_caches()
    clear_options_cache()
    start = time.perf_counter()
    fast_wires = [encode_message(msg) for msg in messages]
    fast_seconds = time.perf_counter() - start

    assert fast_wires == ref_wires   # caching never changes the bytes
    for wire in fast_wires[:50]:
        decoded = decode_message(wire)
        assert decoded.question is not None
    _record(hotpath_bench, "wire_roundtrip", n, ref_seconds, fast_seconds)
    assert hotpath_bench["wire_roundtrip"]["fast_rps"] > \
        hotpath_bench["wire_roundtrip"]["reference_rps"]


# ---------------------------------------------------------------------------
# 3. end-to-end replay


@pytest.mark.hotpath
def test_hotpath_replay(hotpath_bench):
    """Batched replay (fast keys, hoisted attrgetter) vs reference replay
    (per-record lambdas over ipaddress-based keying)."""
    dataset = AllNamesBuilder(scale=0.25 * SCALE, seed=42).build()
    records = dataset.records

    start = time.perf_counter()
    ref = replay_partial(records,
                         client_of=lambda r: r.client_ip,
                         scope_of=lambda r: r.scope,
                         ttl_of=lambda r: r.ttl,
                         fast=False)
    ref_seconds = time.perf_counter() - start

    start = time.perf_counter()
    fast = replay_partial_batched(records, "client_ip")
    fast_seconds = time.perf_counter() - start

    assert fast == ref               # counter-identical partials
    _record(hotpath_bench, "replay_allnames", len(records),
            ref_seconds, fast_seconds)
    # "Measurable end-to-end speedup": well clear of timing noise
    # (measured ~4-5x in development).
    assert hotpath_bench["replay_allnames"]["speedup"] >= 1.2


@pytest.mark.hotpath
def test_hotpath_replay_obs_disabled_is_free(hotpath_bench):
    """The engine's instrumented replay entry point vs the bare loop.

    With no registry or tracer active, ``_replay_shard`` adds exactly two
    module-global loads per *shard* on top of ``replay_partial_batched``
    (the per-record loop is untouched), so its throughput must sit within
    timing noise of the bare fast lane.  This is the delta guard for the
    PR-2 fast paths: any per-record instrumentation creeping into the
    disabled path shows up here as a throughput drop.
    """
    from repro.engine.replay import _replay_shard
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace

    assert obs_metrics.ACTIVE is None and obs_trace.ACTIVE is None
    dataset = AllNamesBuilder(scale=0.25 * SCALE, seed=42).build()
    records = dataset.records

    start = time.perf_counter()
    bare = replay_partial_batched(records, "client_ip")
    bare_seconds = time.perf_counter() - start

    start = time.perf_counter()
    instrumented = _replay_shard(records, "allnames")
    instrumented_seconds = time.perf_counter() - start

    assert instrumented == bare
    bare_rps = _rate(len(records), bare_seconds)
    instrumented_rps = _rate(len(records), instrumented_seconds)
    hotpath_bench["replay_obs_disabled"] = {
        "records": len(records),
        "bare_rps": round(bare_rps, 1),
        "instrumented_rps": round(instrumented_rps, 1),
        "ratio": round(instrumented_rps / bare_rps, 3) if bare_rps else 0.0,
    }
    assert instrumented_rps >= 0.8 * bare_rps
